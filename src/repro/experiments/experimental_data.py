"""Synthetic substitute for the Javey-2005 experimental IV data.

The paper's §VI compares its models against measured characteristics of
an n-type K-doped CNFET (Javey et al., Nano Letters 5, 2005: d = 1.6 nm,
tox = 50 nm back gate, EF = -0.05 eV, T = 300 K).  The measurement data
is only published as figures, so this module *simulates the measurement*
(documented substitution, DESIGN.md §5): it degrades the reference
ballistic theory with the non-idealities a real 2005 device exhibits —

* contact series resistance (implicit ``VDS`` reduction),
* channel transmission < 1 (quasi-ballistic transport),
* a smooth gate-dependent mismatch plus a small deterministic
  "measurement ripple" (fixed seed).

The degradations are sized so the ballistic models disagree with the
"experiment" by mid-single-digit to ~10% average RMS — the regime of the
paper's Table V — while preserving the qualitative IV shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.experiments.workloads import javey_device_parameters
from repro.reference.fettoy import FETToyModel

#: Default non-ideality parameters.  Sized so the purely ballistic
#: models land in the paper's Table V error band (~7-11%) against the
#: synthetic measurement: a ~92% transmission and ~10 kOhm of contact
#: resistance are typical for the best 2005-era devices.
SERIES_RESISTANCE_OHM = 4e3
TRANSMISSION = 0.96
GATE_MISMATCH = 0.02
RIPPLE_AMPLITUDE = 0.015
RNG_SEED = 20080310  # DATE 2008 conference date — fixed for determinism


@dataclass(frozen=True)
class ExperimentalDataset:
    """Synthetic measured characteristics ``ids[i_vg, i_vd]``."""

    vg_values: Tuple[float, ...]
    vd_values: Tuple[float, ...]
    ids: np.ndarray

    def curve(self, vg: float) -> np.ndarray:
        idx = int(np.argmin(np.abs(np.asarray(self.vg_values) - vg)))
        return self.ids[idx]


def generate_experimental_data(
    vg_values: Sequence[float],
    vd_values: Sequence[float],
    series_resistance_ohm: float = SERIES_RESISTANCE_OHM,
    transmission: float = TRANSMISSION,
    gate_mismatch: float = GATE_MISMATCH,
    ripple_amplitude: float = RIPPLE_AMPLITUDE,
    seed: int = RNG_SEED,
) -> ExperimentalDataset:
    """Produce the synthetic measurement set for the Javey device.

    The series resistance is applied by fixed-point iteration on
    ``VDS' = VDS - IDS * Rs`` (three rounds suffice for Rs·IDS << VDS);
    the ripple is low-pass filtered white noise so it looks like probe
    noise rather than per-point jitter.
    """
    if not 0.0 < transmission <= 1.0:
        raise ParameterError(f"transmission must be in (0, 1]: {transmission}")
    if series_resistance_ohm < 0.0:
        raise ParameterError("series resistance must be >= 0")
    model = FETToyModel(javey_device_parameters())
    rng = np.random.default_rng(seed)
    vg_arr = [float(v) for v in vg_values]
    vd_arr = [float(v) for v in vd_values]
    ids = np.zeros((len(vg_arr), len(vd_arr)))
    for i, vg in enumerate(vg_arr):
        gate_factor = 1.0 - gate_mismatch * (0.6 - vg)
        for j, vd in enumerate(vd_arr):
            current = 0.0
            for _ in range(3):
                vd_eff = max(0.0, vd - current * series_resistance_ohm)
                current = transmission * model.ids(vg, vd_eff)
            ids[i, j] = gate_factor * current
        # Smooth multiplicative ripple along the drain sweep.
        noise = rng.normal(0.0, 1.0, len(vd_arr))
        width = min(5, len(vd_arr))
        kernel = np.ones(width) / width
        smooth = np.convolve(noise, kernel, mode="same")[: len(vd_arr)]
        ids[i] *= 1.0 + ripple_amplitude * smooth
    ids[:, np.asarray(vd_arr) == 0.0] = 0.0
    return ExperimentalDataset(tuple(vg_arr), tuple(vd_arr), ids)
