"""One runner per paper experiment (Tables I-V, Figures 2-11).

Each ``run_*`` function measures/evaluates everything an experiment
needs and returns a small result object with the raw arrays plus a
``render()`` method producing the paper-style ASCII table.  The
``benchmarks/`` tree wraps these with pytest-benchmark so `pytest
benchmarks/ --benchmark-only` regenerates the whole evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import metrics
from repro.experiments.experimental_data import (
    ExperimentalDataset,
    generate_experimental_data,
)
from repro.experiments.report import ascii_table, series_block
from repro.experiments.workloads import (
    FIG1011_VDS_SWEEP,
    FIG1011_VG_VALUES,
    FIG2_VSC_AXIS,
    FIG3_VSC_AXIS,
    FIG45_VDS,
    FIG67_VG_VALUES,
    FIG8_CONDITIONS,
    FIG9_CONDITIONS,
    PAPER_TEMPERATURES,
    PAPER_VDS_SWEEP,
    PAPER_VG_VALUES,
    TABLE1_LOOPS,
    TABLE5_VG_VALUES,
    default_device_parameters,
    javey_device_parameters,
)
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyModel, FETToyParameters

# ----------------------------------------------------------------------
# Shared device construction (fit once per configuration, cached)
# ----------------------------------------------------------------------

_DEVICE_CACHE: Dict[Tuple, Tuple[FETToyModel, CNFET, CNFET]] = {}


def build_models(params: FETToyParameters
                 ) -> Tuple[FETToyModel, CNFET, CNFET]:
    """``(reference, model1_device, model2_device)`` for a configuration.

    Boundary optimisation is on (the paper's numerically-optimised
    boundaries); results are cached because the error tables revisit the
    same nine (T, EF) combinations.
    """
    key = (
        params.diameter_nm, params.tox_nm, params.kappa,
        params.temperature_k, params.fermi_level_ev, params.alpha_g,
        params.alpha_d, params.gate_geometry, params.n_subbands,
        params.transmission, params.chirality,
    )
    cached = _DEVICE_CACHE.get(key)
    if cached is None:
        reference = FETToyModel(params)
        model1 = CNFET(params, model="model1")
        model2 = CNFET(params, model="model2")
        cached = (reference, model1, model2)
        _DEVICE_CACHE[key] = cached
    return cached


# ----------------------------------------------------------------------
# Table I — CPU time comparison
# ----------------------------------------------------------------------

@dataclass
class Table1Result:
    """Wall-clock seconds per loop count (paper's Table I layout)."""

    loops: Tuple[int, ...]
    fettoy_s: Tuple[float, ...]
    model1_s: Tuple[float, ...]
    model2_s: Tuple[float, ...]
    #: bias points evaluated per family invocation (throughput metric)
    points_per_family: int = 0

    @property
    def speedup_model1(self) -> float:
        return self.fettoy_s[-1] / self.model1_s[-1]

    @property
    def speedup_model2(self) -> float:
        return self.fettoy_s[-1] / self.model2_s[-1]

    def points_per_second(self, model: str = "model2") -> float:
        """Sustained bias-point throughput at the largest loop count."""
        seconds = {"fettoy": self.fettoy_s, "model1": self.model1_s,
                   "model2": self.model2_s}[model][-1]
        return self.points_per_family * self.loops[-1] / seconds

    def render(self) -> str:
        rows = [
            (n, self.fettoy_s[i], self.model1_s[i], self.model2_s[i])
            for i, n in enumerate(self.loops)
        ]
        table = ascii_table(
            ("Loops", "FETToy [s]", "Model 1 [s]", "Model 2 [s]"), rows,
            title="Table I — average CPU time (full IV family per loop)",
        )
        throughput = ""
        if self.points_per_family:
            throughput = (
                f"\nthroughput @ {self.loops[-1]} loops: "
                f"Model 1 = {self.points_per_second('model1'):,.0f} pts/s, "
                f"Model 2 = {self.points_per_second('model2'):,.0f} pts/s "
                f"(batched evaluation path)"
            )
        return (
            f"{table}\n"
            f"speed-up @ {self.loops[-1]} loops: "
            f"Model 1 = {self.speedup_model1:.0f}x, "
            f"Model 2 = {self.speedup_model2:.0f}x "
            f"(paper: ~3400x / ~1100x on a 2008 Pentium IV + MATLAB)"
            f"{throughput}"
        )


def run_table1(loops: Sequence[int] = TABLE1_LOOPS,
               vg_values: Sequence[float] = FIG67_VG_VALUES,
               vd_values: Sequence[float] = PAPER_VDS_SWEEP
               ) -> Table1Result:
    """Time full output-characteristic families, FETToy vs fast models.

    One "invocation" computes the 7 x 13 family of Figs. 6/7, mirroring
    the paper's description of invoking all models N times.
    """
    reference, model1, model2 = build_models(default_device_parameters())

    def time_model(model, n: int) -> float:
        start = time.perf_counter()
        for _ in range(n):
            model.iv_family(vg_values, vd_values)
        return time.perf_counter() - start

    # Warm-up (JIT-free Python, but populates solver caches fairly).
    model1.iv_family(vg_values, vd_values)
    model2.iv_family(vg_values, vd_values)
    fettoy_s, model1_s, model2_s = [], [], []
    for n in loops:
        fettoy_s.append(time_model(reference, n))
        model1_s.append(time_model(model1, n))
        model2_s.append(time_model(model2, n))
    return Table1Result(tuple(loops), tuple(fettoy_s), tuple(model1_s),
                        tuple(model2_s),
                        points_per_family=len(vg_values) * len(vd_values))


# ----------------------------------------------------------------------
# Tables II-IV — RMS error grids
# ----------------------------------------------------------------------

@dataclass
class RmsTableResult:
    """Per-(T, VG) errors for both models at one Fermi level."""

    fermi_level_ev: float
    temperatures_k: Tuple[float, ...]
    vg_values: Tuple[float, ...]
    #: errors[(temperature, model_name)][i_vg] in percent
    errors: Dict[Tuple[float, str], Tuple[float, ...]] = field(
        default_factory=dict
    )

    def average(self, model_name: str) -> float:
        vals = [
            e for (t, name), errs in self.errors.items() if name == model_name
            for e in errs
        ]
        return float(np.mean(vals))

    def render(self) -> str:
        headers = ["VG [V]"]
        for t in self.temperatures_k:
            headers += [f"M1@{t:.0f}K [%]", f"M2@{t:.0f}K [%]"]
        rows = []
        for i, vg in enumerate(self.vg_values):
            row: List[object] = [vg]
            for t in self.temperatures_k:
                row.append(self.errors[(t, "model1")][i])
                row.append(self.errors[(t, "model2")][i])
            rows.append(row)
        return ascii_table(
            headers, rows,
            title=(
                f"Average RMS errors in IDS, EF = {self.fermi_level_ev} eV "
                f"(paper Tables II-IV layout)"
            ),
        )


def run_rms_table(fermi_level_ev: float,
                  temperatures_k: Sequence[float] = PAPER_TEMPERATURES,
                  vg_values: Sequence[float] = PAPER_VG_VALUES,
                  vd_values: Sequence[float] = PAPER_VDS_SWEEP
                  ) -> RmsTableResult:
    """Reproduce one of Tables II/III/IV (per the Fermi level)."""
    result = RmsTableResult(
        fermi_level_ev=fermi_level_ev,
        temperatures_k=tuple(temperatures_k),
        vg_values=tuple(vg_values),
    )
    for temperature in temperatures_k:
        params = default_device_parameters(
            temperature_k=temperature, fermi_level_ev=fermi_level_ev
        )
        reference, model1, model2 = build_models(params)
        ref_family = reference.iv_family(vg_values, vd_values)
        for name, device in (("model1", model1), ("model2", model2)):
            fam = device.iv_family(vg_values, vd_values)
            errs = tuple(
                metrics.rms_error_percent(fam[i], ref_family[i])
                for i in range(len(vg_values))
            )
            result.errors[(temperature, name)] = errs
    return result


# ----------------------------------------------------------------------
# Table V + Figs. 10/11 — comparison with (synthetic) experiment
# ----------------------------------------------------------------------

@dataclass
class Table5Result:
    vg_values: Tuple[float, ...]
    fettoy_err: Tuple[float, ...]
    model1_err: Tuple[float, ...]
    model2_err: Tuple[float, ...]
    experimental: ExperimentalDataset = None
    families: Dict[str, np.ndarray] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            (vg, self.fettoy_err[i], self.model1_err[i], self.model2_err[i])
            for i, vg in enumerate(self.vg_values)
        ]
        return ascii_table(
            ("VG [V]", "FETToy [%]", "Model 1 [%]", "Model 2 [%]"), rows,
            title=(
                "Table V — avg RMS error vs (synthetic) experimental data, "
                "d=1.6nm tox=50nm T=300K EF=-0.05eV"
            ),
        )


def run_table5(vg_values: Sequence[float] = TABLE5_VG_VALUES,
               vd_values: Sequence[float] = FIG1011_VDS_SWEEP,
               seed: Optional[int] = None) -> Table5Result:
    """Reproduce Table V: all three models vs the measurement substitute.

    ``seed`` re-rolls the synthetic measurement ripple (the default is
    the fixed seed of the committed reproduction).
    """
    params = javey_device_parameters()
    reference, model1, model2 = build_models(params)
    if seed is None:
        experiment = generate_experimental_data(vg_values, vd_values)
    else:
        experiment = generate_experimental_data(vg_values, vd_values,
                                                seed=seed)
    families = {
        "fettoy": reference.iv_family(vg_values, vd_values),
        "model1": model1.iv_family(vg_values, vd_values),
        "model2": model2.iv_family(vg_values, vd_values),
    }
    errs = {name: [] for name in families}
    for i in range(len(vg_values)):
        for name, fam in families.items():
            errs[name].append(
                metrics.rms_error_percent(fam[i], experiment.ids[i])
            )
    return Table5Result(
        vg_values=tuple(float(v) for v in vg_values),
        fettoy_err=tuple(errs["fettoy"]),
        model1_err=tuple(errs["model1"]),
        model2_err=tuple(errs["model2"]),
        experimental=experiment,
        families=families,
    )


@dataclass
class Fig1011Result:
    vg_values: Tuple[float, ...]
    vd_values: Tuple[float, ...]
    experimental: np.ndarray
    fettoy: np.ndarray
    model: np.ndarray
    model_name: str

    def render(self) -> str:
        blocks = []
        for i, vg in enumerate(self.vg_values):
            blocks.append(series_block(
                f"Fig. 10/11 — VG = {vg} V ({self.model_name})",
                "VDS [V]", list(self.vd_values),
                {
                    "experiment [A]": self.experimental[i],
                    "FETToy [A]": self.fettoy[i],
                    f"{self.model_name} [A]": self.model[i],
                },
                max_points=9,
            ))
        return "\n\n".join(blocks)


def run_fig10_11(model_name: str = "model2",
                 vg_values: Sequence[float] = FIG1011_VG_VALUES,
                 vd_values: Sequence[float] = FIG1011_VDS_SWEEP
                 ) -> Fig1011Result:
    """Figures 10 (Model 1) and 11 (Model 2): IV curves vs experiment."""
    params = javey_device_parameters()
    reference, model1, model2 = build_models(params)
    device = model1 if model_name == "model1" else model2
    experiment = generate_experimental_data(vg_values, vd_values)
    return Fig1011Result(
        vg_values=tuple(float(v) for v in vg_values),
        vd_values=tuple(float(v) for v in vd_values),
        experimental=experiment.ids,
        fettoy=reference.iv_family(vg_values, vd_values),
        model=device.iv_family(vg_values, vd_values),
        model_name=model_name,
    )


# ----------------------------------------------------------------------
# Figs. 2-5 — charge curves and their approximations
# ----------------------------------------------------------------------

@dataclass
class ChargeFigureResult:
    model_name: str
    vsc_axis: Tuple[float, ...]
    theory_qs: np.ndarray
    fitted_qs: np.ndarray
    theory_qd: np.ndarray = None
    fitted_qd: np.ndarray = None
    boundaries_abs: Tuple[float, ...] = ()
    rms_relative: float = 0.0

    def render(self) -> str:
        series = {
            "QS theory [C/m]": self.theory_qs,
            "QS fitted [C/m]": self.fitted_qs,
        }
        if self.theory_qd is not None:
            series["QD theory [C/m]"] = self.theory_qd
            series["QD fitted [C/m]"] = self.fitted_qd
        block = series_block(
            f"{self.model_name}: piecewise approximation "
            f"(boundaries at {', '.join(f'{b:+.3f} V' for b in self.boundaries_abs)})",
            "VSC [V]", list(self.vsc_axis), series, max_points=11,
        )
        return f"{block}\ncharge-fit RMS: {100*self.rms_relative:.2f}% of peak"


def run_fig2_3(model_name: str) -> ChargeFigureResult:
    """Figure 2 (Model 1) or Figure 3 (Model 2): QS and its fit."""
    axis = FIG2_VSC_AXIS if model_name == "model1" else FIG3_VSC_AXIS
    reference, model1, model2 = build_models(default_device_parameters())
    device = model1 if model_name == "model1" else model2
    vsc = np.asarray(axis)
    return ChargeFigureResult(
        model_name=model_name,
        vsc_axis=tuple(axis),
        theory_qs=np.asarray(reference.charge.qs(vsc)),
        fitted_qs=np.asarray(device.fitted.curve.value(vsc)),
        boundaries_abs=device.fitted.boundaries_abs,
        rms_relative=device.fitted.rms_error_relative,
    )


def run_fig4_5(model_name: str, vds: float = FIG45_VDS
               ) -> ChargeFigureResult:
    """Figure 4 (Model 1) or 5 (Model 2): QS and QD with their fits."""
    reference, model1, model2 = build_models(default_device_parameters())
    device = model1 if model_name == "model1" else model2
    vsc = np.linspace(-0.6, 0.0, 201)
    qd_curve = device.fitted.curve.shifted(vds)  # QD(V) = QS(V + VDS)
    return ChargeFigureResult(
        model_name=model_name,
        vsc_axis=tuple(vsc),
        theory_qs=np.asarray(reference.charge.qs(vsc)),
        fitted_qs=np.asarray(device.fitted.curve.value(vsc)),
        theory_qd=np.asarray(reference.charge.qd(vsc, vds)),
        fitted_qd=np.asarray(qd_curve.value(vsc)),
        boundaries_abs=device.fitted.boundaries_abs,
        rms_relative=device.fitted.rms_error_relative,
    )


# ----------------------------------------------------------------------
# Figs. 6-9 — IV families, fast model vs FETToy
# ----------------------------------------------------------------------

@dataclass
class IVFigureResult:
    title: str
    vg_values: Tuple[float, ...]
    vd_values: Tuple[float, ...]
    reference: np.ndarray
    model: np.ndarray
    model_name: str

    @property
    def average_error_percent(self) -> float:
        return metrics.average_rms_error_percent(self.model, self.reference)

    def render(self) -> str:
        blocks = []
        for i, vg in enumerate(self.vg_values):
            blocks.append(series_block(
                f"{self.title} — VG = {vg} V",
                "VDS [V]", list(self.vd_values),
                {
                    "FETToy [A]": self.reference[i],
                    f"{self.model_name} [A]": self.model[i],
                },
                max_points=7,
            ))
        blocks.append(
            f"average RMS error: {self.average_error_percent:.2f}%"
        )
        return "\n\n".join(blocks)


def run_iv_figure(model_name: str, temperature_k: float,
                  fermi_level_ev: float, vg_values: Sequence[float],
                  vd_values: Sequence[float] = PAPER_VDS_SWEEP,
                  title: str = "") -> IVFigureResult:
    params = default_device_parameters(
        temperature_k=temperature_k, fermi_level_ev=fermi_level_ev
    )
    reference, model1, model2 = build_models(params)
    device = model1 if model_name == "model1" else model2
    return IVFigureResult(
        title=title or f"{model_name} vs FETToy, T={temperature_k:.0f}K, "
                       f"EF={fermi_level_ev}eV",
        vg_values=tuple(float(v) for v in vg_values),
        vd_values=tuple(float(v) for v in vd_values),
        reference=reference.iv_family(vg_values, vd_values),
        model=device.iv_family(vg_values, vd_values),
        model_name=model_name,
    )


def run_fig6_7(model_name: str) -> IVFigureResult:
    """Figure 6 (Model 1) / Figure 7 (Model 2): T=300K, EF=-0.32 eV."""
    return run_iv_figure(
        model_name, 300.0, -0.32, FIG67_VG_VALUES,
        title=f"Fig. {'6' if model_name == 'model1' else '7'}: "
              f"{model_name} vs FETToy (T=300K, EF=-0.32eV)",
    )


def run_fig8() -> IVFigureResult:
    """Figure 8: Model 2 at T=150K, EF=0 eV."""
    cond = FIG8_CONDITIONS
    return run_iv_figure(
        "model2", cond["temperature_k"], cond["fermi_level_ev"],
        cond["vg_values"], title="Fig. 8: model2 vs FETToy (T=150K, EF=0eV)",
    )


def run_fig9() -> IVFigureResult:
    """Figure 9: Model 2 at T=450K, EF=-0.5 eV."""
    cond = FIG9_CONDITIONS
    return run_iv_figure(
        "model2", cond["temperature_k"], cond["fermi_level_ev"],
        cond["vg_values"],
        title="Fig. 9: model2 vs FETToy (T=450K, EF=-0.5eV)",
    )
