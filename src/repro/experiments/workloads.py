"""Bias grids and device configurations used by the paper's evaluation.

Everything the runners sweep is defined here so the per-table parameters
are auditable in one place (DESIGN.md's per-experiment index references
these names).
"""

from __future__ import annotations

import numpy as np

from repro.reference.fettoy import FETToyParameters

#: Temperatures of Tables II-IV [K].
PAPER_TEMPERATURES = (150.0, 300.0, 450.0)

#: Fermi levels of Tables II, III, IV respectively [eV].
PAPER_FERMI_LEVELS = (-0.32, -0.5, 0.0)

#: Gate voltages of the error tables [V].
PAPER_VG_VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

#: Drain sweep of the output characteristics [V] (0..0.6, 13 points —
#: the 50 mV pitch visible in the paper's figures).
PAPER_VDS_SWEEP = tuple(np.linspace(0.0, 0.6, 13))

#: Gate voltages of Figs. 6/7 (0.3..0.6 V in 50 mV steps).
FIG67_VG_VALUES = (0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6)

#: Fig. 8: T = 150 K, EF = 0 eV, VG = 0.1..0.6 V in 0.1 V steps.
FIG8_CONDITIONS = {
    "temperature_k": 150.0,
    "fermi_level_ev": 0.0,
    "vg_values": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
}

#: Fig. 9: T = 450 K, EF = -0.5 eV, VG = 0.4..0.6 V in 50 mV steps.
FIG9_CONDITIONS = {
    "temperature_k": 450.0,
    "fermi_level_ev": -0.5,
    "vg_values": (0.4, 0.45, 0.5, 0.55, 0.6),
}

#: Table I loop counts (model invocations per timing row).
TABLE1_LOOPS = (5, 10, 50, 100)

#: VSC axis of the charge-approximation figures (Figs. 2-5), absolute
#: volts at the default EF = -0.32 eV device.
FIG2_VSC_AXIS = tuple(np.linspace(-0.5, 0.0, 201))
FIG3_VSC_AXIS = tuple(np.linspace(-0.8, 0.0, 201))

#: Drain bias used for the QD curves of Figs. 4/5.
FIG45_VDS = 0.2

#: Default device of Tables I-IV and Figs. 2-9 (FETToy's stock CNFET).
def default_device_parameters(temperature_k: float = 300.0,
                              fermi_level_ev: float = -0.32
                              ) -> FETToyParameters:
    """The (13,0)-tube coaxial-gate device used throughout §V."""
    return FETToyParameters(
        temperature_k=temperature_k,
        fermi_level_ev=fermi_level_ev,
    )


#: The Javey-2005 experimental device of §VI / Table V / Figs. 10-11:
#: d = 1.6 nm, tox = 50 nm back gate, EF = -0.05 eV, T = 300 K.
def javey_device_parameters() -> FETToyParameters:
    return FETToyParameters(
        diameter_nm=1.6,
        tox_nm=50.0,
        kappa=3.9,
        temperature_k=300.0,
        fermi_level_ev=-0.05,
        gate_geometry="backgate",
    )


#: Gate voltages of the experimental comparison.
TABLE5_VG_VALUES = (0.2, 0.4, 0.6)
FIG1011_VG_VALUES = (0.0, 0.2, 0.4, 0.6)

#: Drain sweep of Figs. 10/11 (0..0.4 V).
FIG1011_VDS_SWEEP = tuple(np.linspace(0.0, 0.4, 17))


# ----------------------------------------------------------------------
# Named variability workloads (the `mc` CLI subcommand and the smoke
# campaign reference these by name; see docs/variability.md)
# ----------------------------------------------------------------------

#: Supply voltage of the variability workloads [V] (the logic family's
#: default, and the bias at which Ion/gm are quoted).
VARIABILITY_VDD = 0.6

#: name -> short description, for --help and docs.
VARIABILITY_WORKLOADS = {
    "device": "Ion/Ioff/Vth/gm over diameter, t_ox and E_F variation",
    "device-chirality": "device metrics with the tube drawn from the "
                        "discrete (n,0) family around (13,0)",
    "inverter": "complementary-inverter VTC: VM, gain, noise margins",
    "ringosc": "ring-oscillator period / frequency / stage delay",
    "gate": "gate timing/energy at a nominal slew/load point "
            "(see repro.characterize)",
}


def variability_workload(name: str, sigma_scale: float = 1.0,
                         vdd: float = VARIABILITY_VDD,
                         model: str = "model2", stages: int = 3,
                         workers: int = 1, metrics=None,
                         gate: str = "nand2", use_batch: bool = True,
                         backend=None):
    """``(space, evaluator)`` for a named variability workload.

    Imported lazily so the paper-table runners don't pay for the
    variability subsystem (and vice versa).
    """
    from repro.variability.campaign import DeviceMetricsEvaluator
    from repro.variability.circuits import (
        InverterVTCEvaluator,
        RingOscillatorEvaluator,
    )
    from repro.variability.params import (
        chirality_device_space,
        default_device_space,
    )

    from repro.errors import CampaignError

    if name in ("device", "device-chirality"):
        if workers != 1:
            raise CampaignError(
                "--workers applies to the circuit workloads only; the "
                "device workload is already batched in-process"
            )
        device_kwargs = {"vdd": vdd, "model": model}
        if metrics is not None:
            device_kwargs["metrics"] = tuple(metrics)
        space = (default_device_space(sigma_scale) if name == "device"
                 else chirality_device_space(sigma_scale))
        return space, DeviceMetricsEvaluator(space, **device_kwargs)
    if metrics is not None:
        raise CampaignError(
            f"--metric applies to the device workloads only; "
            f"{name!r} reports its fixed circuit metrics"
        )
    if name == "inverter":
        space = default_device_space(sigma_scale)
        return space, InverterVTCEvaluator(
            space, vdd=vdd, model=model, workers=workers,
            use_batch=use_batch, backend=backend,
            spec_limits={"nml": (0.25 * vdd, None),
                         "nmh": (0.25 * vdd, None)},
        )
    if name == "ringosc":
        space = default_device_space(sigma_scale)
        return space, RingOscillatorEvaluator(
            space, vdd=vdd, model=model, stages=stages, workers=workers,
            use_batch=use_batch, backend=backend)
    if name == "gate":
        from repro.characterize import GateDelayEvaluator

        space = default_device_space(sigma_scale)
        return space, GateDelayEvaluator(
            space, gate=gate, vdd=vdd, model=model, workers=workers,
            use_batch=use_batch, backend=backend)
    raise CampaignError(
        f"unknown variability workload {name!r}; expected one of "
        f"{sorted(VARIABILITY_WORKLOADS)}"
    )
