"""Deterministic, seedable fault injection for chaos testing.

Production delivers failures the test suite normally never sees:
OOM-killed pool workers, half-written JSON records, singular matrices,
flaky HTTP transports.  This module makes those failures *injectable
at documented seams* and *replayable*: a :class:`FaultPlan` is a
seeded schedule of which seam fails at which occurrence, so a chaos
run that exposed a recovery bug can be re-run byte-identically.

Seams (the strings call sites pass to :func:`fire`):

``parallel.worker_kill``
    A forked :func:`repro.parallel.fork_map` worker dies hard
    (``os._exit``) before evaluating an item — the moral equivalent of
    the OOM killer.  Keyed by *item index*, so the schedule is
    deterministic regardless of which worker picks the item up.
    Recovery: the parent catches ``BrokenProcessPool`` and re-runs the
    unfinished items serially.
``persist.truncate``
    An atomic JSON record write (campaign chunk, experiment record)
    is truncated mid-file, as a crash between ``write`` and ``rename``
    would leave it.  Recovery: resume quarantines the corrupt file and
    recomputes it.
``solver.singular``
    The linear solve inside a Newton iteration raises
    ``numpy.linalg.LinAlgError`` (an exactly singular system).
    Recovery: the Newton loop converts it into an
    :class:`~repro.errors.AnalysisError`, which gmin/source stepping
    (DC) or step rejection (transient) then absorb.
``kernel.backend``
    The compiled kernel tier fails to resolve; the numpy reference
    backend (byte-identical by the kernels contract) is returned
    instead.
``service.transport``
    :class:`repro.service.ServiceClient` sees a transport-level
    failure (``URLError``) before the request reaches the server.
    Recovery: idempotent retry with backoff.
``service.latency``
    The scheduler (or client) sleeps ``latency_s`` before dispatching
    — a slow lane that must never change results, only timings.

A plan is activated with :func:`activate` (a context manager); while
no plan is active every seam check is a single ``None`` comparison.
Forked workers inherit the active plan copy-on-write, which is what
makes the ``parallel.worker_kill`` seam reach child processes.
Listeners registered with :func:`add_listener` observe every firing
(the job server counts them into ``service_faults_injected_total``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, \
    Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["SEAMS", "FaultPlan", "activate", "active_plan", "fire",
           "mangle_text", "mangle_bytes", "sleep_seam", "add_listener",
           "remove_listener"]

#: Documented fault seams: name -> one-line description.
SEAMS: Dict[str, str] = {
    "parallel.worker_kill": "fork_map child dies hard before an item "
                            "(keyed by item index)",
    "persist.truncate": "atomic JSON record write truncated mid-file",
    "solver.singular": "linear solve raises LinAlgError inside Newton",
    "kernel.backend": "compiled kernel tier fails to resolve "
                      "(numpy fallback)",
    "service.transport": "client HTTP transport error before the "
                         "request lands",
    "service.latency": "injected dispatch latency (never changes "
                       "results)",
}

#: Listeners called as ``listener(seam, key)`` on every firing.
_LISTENERS: List[Callable[[str, Optional[int]], None]] = []

#: The active plan (``None`` = fault injection fully disabled).
_ACTIVE: Optional["FaultPlan"] = None


class FaultPlan:
    """A replayable schedule of fault firings.

    ``schedule`` maps a seam name to the occurrences that fail:
    for unkeyed seams the values are 1-based *call counts* at that
    seam; for keyed seams (``parallel.worker_kill``) they are the
    *keys* (item indices) that fail.  Everything not listed succeeds.

    ``FaultPlan(seed=7, schedule={"persist.truncate": [2]})`` fails
    exactly the second atomic record write of the run, every time.
    ``seed`` is carried for provenance and used by :meth:`random` to
    derive a schedule; two plans with equal ``describe()`` payloads
    inject identically.
    """

    def __init__(self, seed: int = 0,
                 schedule: Optional[Mapping[str, Sequence[int]]] = None,
                 latency_s: float = 0.0) -> None:
        schedule = dict(schedule or {})
        for seam in schedule:
            if seam not in SEAMS:
                raise ParameterError(
                    f"unknown fault seam {seam!r}; documented seams: "
                    f"{sorted(SEAMS)}")
        if latency_s < 0:
            raise ParameterError(
                f"latency_s must be >= 0: {latency_s!r}")
        self.seed = int(seed)
        self.schedule = {seam: frozenset(int(v) for v in values)
                         for seam, values in schedule.items()}
        self.latency_s = float(latency_s)
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: Chronological ``(seam, occurrence_or_key)`` firing log.
        self.fired: List[Tuple[str, int]] = []

    @classmethod
    def random(cls, seed: int, rates: Mapping[str, float],
               horizon: int = 64, latency_s: float = 0.0) -> "FaultPlan":
        """Derive a schedule from ``seed``: each of the first
        ``horizon`` occurrences of a seam fails with its rate.

        Deterministic — the same ``(seed, rates, horizon)`` always
        builds the same plan, so a failing chaos run is replayable
        from its parameters alone.
        """
        import random as _random

        rng = _random.Random(seed)
        schedule: Dict[str, List[int]] = {}
        for seam in sorted(rates):
            rate = rates[seam]
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(
                    f"fault rate for {seam!r} must be in [0, 1]: "
                    f"{rate!r}")
            picks = [i for i in range(1, horizon + 1)
                     if rng.random() < rate]
            if picks:
                schedule[seam] = picks
        return cls(seed=seed, schedule=schedule, latency_s=latency_s)

    def describe(self) -> Dict:
        """JSON-able plan document (the FaultPlan schema): ``seed``,
        ``latency_s`` and the per-seam sorted occurrence lists."""
        return {
            "seed": self.seed,
            "latency_s": self.latency_s,
            "schedule": {seam: sorted(values)
                         for seam, values in self.schedule.items()},
        }

    def should_fire(self, seam: str, key: Optional[int] = None) -> bool:
        """Decide (and record) whether this occurrence of ``seam``
        fails.  Unkeyed seams count calls; keyed seams match ``key``
        against the schedule.  Thread-safe."""
        targets = self.schedule.get(seam)
        with self._lock:
            if key is None:
                count = self._counts.get(seam, 0) + 1
                self._counts[seam] = count
            else:
                count = key
            if targets is None or count not in targets:
                return False
            self.fired.append((seam, count))
            return True


def activate(plan: FaultPlan) -> "_Activation":
    """Context manager installing ``plan`` as the process-global
    active plan (nested activations restore the previous plan)."""
    return _Activation(plan)


@contextmanager
def _activation_impl(plan: FaultPlan) -> Iterator[FaultPlan]:
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


class _Activation:
    """Context manager returned by :func:`activate`."""

    def __init__(self, plan: FaultPlan) -> None:
        self._cm = _activation_impl(plan)

    def __enter__(self) -> FaultPlan:
        return self._cm.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._cm.__exit__(*exc_info)


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, or ``None``."""
    return _ACTIVE


def add_listener(listener: Callable[[str, Optional[int]], None]) -> None:
    """Register a callback observing every firing (``seam, key``)."""
    _LISTENERS.append(listener)


def remove_listener(listener: Callable[[str, Optional[int]], None]
                    ) -> None:
    """Unregister a listener previously added (no-op when absent)."""
    try:
        _LISTENERS.remove(listener)
    except ValueError:
        pass


def fire(seam: str, key: Optional[int] = None) -> bool:
    """``True`` when the active plan says this occurrence of ``seam``
    fails.  The call site then raises (or performs) the seam's
    realistic failure.  A single ``None`` check when no plan is
    active, so production paths pay nothing."""
    plan = _ACTIVE
    if plan is None:
        return False
    if not plan.should_fire(seam, key):
        return False
    for listener in list(_LISTENERS):
        try:
            listener(seam, key)
        except Exception:  # pragma: no cover - accounting never breaks
            pass            # the injection itself
    return True


def mangle_text(seam: str, text: str) -> str:
    """Return ``text`` truncated to half length when ``seam`` fires —
    the shape a crash mid-write leaves behind — else unchanged."""
    if fire(seam):
        return text[:max(1, len(text) // 2)]
    return text


def mangle_bytes(seam: str, data: bytes) -> bytes:
    """Binary twin of :func:`mangle_text`: return ``data`` truncated to
    half length when ``seam`` fires — the shape a crash mid-write
    leaves behind — else unchanged.  Used by the chunked waveform
    store, whose ``.npy`` chunks are not text."""
    if fire(seam):
        return data[:max(1, len(data) // 2)]
    return data


def sleep_seam(seam: str) -> None:
    """Sleep the plan's ``latency_s`` when ``seam`` fires (a slow lane
    that must never change results)."""
    plan = _ACTIVE
    if plan is not None and plan.latency_s > 0 and fire(seam):
        time.sleep(plan.latency_s)
