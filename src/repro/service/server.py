"""The job server: HTTP front door, cache, scheduler and metrics.

:class:`JobServer` owns the whole pipeline — a
:class:`repro.service.cache.ResultCache` consulted at submission, a
:class:`repro.service.scheduler.CoalescingScheduler` worker pool, a
:class:`repro.service.metrics.MetricsRegistry` and a structured JSON
logger — and exposes it over a stdlib ``ThreadingHTTPServer``:

``POST /jobs``
    Submit a JSON job spec (see :mod:`repro.service.jobs`).  Returns
    the job document; a fingerprint cache hit returns ``state=done``
    with the result inline, no engine work.
``GET /jobs/<id>``
    Poll a job; the result rides along once the state is ``done``.
``POST /jobs/<id>/cancel``
    Cooperatively cancel a queued or running job; the running engine
    unwinds at its next cancellation check and the job fails with
    ``error_kind = "cancelled"``.
``GET /healthz``
    Liveness + job-state counts.
``GET /metrics``
    Prometheus text exposition of the counters/histograms below.
``POST /shutdown``
    Clean remote shutdown (used by the CI smoke run).  Loopback
    clients are trusted; any other client must present the server's
    per-run token in an ``X-Shutdown-Token`` header, so a non-default
    ``--host`` bind does not hand remote denial-of-service to anyone
    who can reach the port.

Exported metric names are listed in :data:`SERVICE_COUNTERS` and
:data:`SERVICE_HISTOGRAMS`; tests assert against these, so treat them
as API.
"""

from __future__ import annotations

import hmac
import ipaddress
import json
import secrets
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.errors import (ParameterError, ReproError, ServiceError,
                          ServiceOverloadError)
from repro.service.cache import ResultCache
from repro.service.jobs import parse_job_spec
from repro.service.metrics import (MetricsRegistry, StructuredLogger,
                                   new_request_id)
from repro.service.scheduler import (CoalescingScheduler, Job,
                                     JobRegistry)

__all__ = ["SERVICE_COUNTERS", "SERVICE_HISTOGRAMS", "JobServer",
           "serve", "shutdown_authorized"]

#: Counter names exported at ``/metrics`` (documented API).
SERVICE_COUNTERS = (
    "service_jobs_submitted_total",
    "service_jobs_completed_total",
    "service_jobs_failed_total",
    "service_cache_hits_total",
    "service_cache_misses_total",
    "service_engine_dispatches_total",
    "service_jobs_coalesced_total",
    "service_lane_fallbacks_total",
    "service_jobs_timeout_total",
    "service_faults_injected_total",
)

#: Histogram names exported at ``/metrics`` (documented API).
SERVICE_HISTOGRAMS = (
    "service_queue_wait_seconds",
    "service_solve_seconds",
    "service_total_seconds",
)

_COUNTER_HELP = {
    "service_jobs_submitted_total": "Jobs accepted by POST /jobs.",
    "service_jobs_completed_total": "Jobs finished successfully "
                                    "(including cache hits).",
    "service_jobs_failed_total": "Jobs that ended in the failed state.",
    "service_cache_hits_total": "Submissions answered from the "
                                "fingerprint result cache.",
    "service_cache_misses_total": "Submissions that had to run.",
    "service_engine_dispatches_total": "Engine calls issued (one per "
                                       "coalesced group or solo job).",
    "service_jobs_coalesced_total": "Jobs that shared a lane-batched "
                                    "dispatch with at least one other "
                                    "job.",
    "service_lane_fallbacks_total": "Lanes re-run through the scalar "
                                    "engine after failing in a batch.",
    "service_jobs_timeout_total": "Jobs failed because their "
                                  "deadline_s budget expired.",
    "service_faults_injected_total": "Fault-seam firings observed "
                                     "while a FaultPlan was active "
                                     "(chaos runs only; 0 in "
                                     "production).",
}

_HISTOGRAM_HELP = {
    "service_queue_wait_seconds": "Seconds jobs spent queued "
                                  "(includes the coalescing window).",
    "service_solve_seconds": "Seconds per engine dispatch.",
    "service_total_seconds": "Seconds from submission to completion.",
}


def shutdown_authorized(client_host: str, token: str,
                        expected: str) -> bool:
    """Decide whether a ``POST /shutdown`` request may stop the server.

    A matching ``X-Shutdown-Token`` always authorizes; loopback
    clients are trusted without one (the default ``127.0.0.1`` bind,
    and what the in-repo tests/CI smoke rely on).  Everyone else is
    refused — binding ``--host 0.0.0.0`` must not let any client that
    can reach the port terminate the service.
    """
    if token and hmac.compare_digest(token, expected):
        return True
    try:
        return ipaddress.ip_address(client_host).is_loopback
    except ValueError:
        return False


class JobServer:
    """A complete in-process job service.

    Usable with or without HTTP: :meth:`submit` / :meth:`job` drive it
    directly (tests, benchmarks), while :meth:`start` binds the
    threaded HTTP front end.  Also a context manager — ``__exit__``
    shuts everything down.
    """

    def __init__(self, *, workers: int = 2, batch_window: float = 0.05,
                 cache_size: int = 256, max_lanes: int = 64,
                 max_queue: Optional[int] = None,
                 backend: Optional[str] = None,
                 registry_limit: int = 4096,
                 logger: Optional[StructuredLogger] = None) -> None:
        self.metrics = MetricsRegistry()
        for name in SERVICE_COUNTERS:
            self.metrics.counter(name, _COUNTER_HELP[name])
        for name in SERVICE_HISTOGRAMS:
            self.metrics.histogram(name, _HISTOGRAM_HELP[name])
        self.cache = ResultCache(cache_size)
        self.registry = JobRegistry(registry_limit)
        self.log = logger or StructuredLogger()
        #: Per-run secret authorizing non-loopback POST /shutdown
        #: (logged at start so the operator can capture it).
        self.shutdown_token = secrets.token_hex(16)
        self.scheduler = CoalescingScheduler(
            workers=workers, batch_window=batch_window,
            max_lanes=max_lanes, max_queue=max_queue, backend=backend,
            on_group=self._group_done)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        # Chaos accounting: every fault-seam firing in this process
        # while this server lives shows up at /metrics.
        self._fault_listener = self._on_fault
        faults.add_listener(self._fault_listener)

    def _on_fault(self, seam: str, key: Optional[int]) -> None:
        """Fault-injection listener: count firings into the metrics."""
        self.metrics.get("service_faults_injected_total").inc()
        self.log.event("fault_injected", seam=seam, key=key)

    # -- core API ------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Validate and enqueue a job payload; returns the job.

        Cache hits complete synchronously (``state == "done"``,
        ``cached`` set) without touching the scheduler.  Invalid specs
        raise :class:`repro.errors.ReproError` (HTTP layer: 400).
        """
        request_id = new_request_id()
        spec = parse_job_spec(payload)
        job = Job(spec, request_id=request_id)
        self.registry.add(job)
        self.metrics.get("service_jobs_submitted_total").inc()
        cached = self.cache.get(spec.fingerprint)
        if cached is not None:
            self.metrics.get("service_cache_hits_total").inc()
            job.finish(cached, cached=True)
            self.metrics.get("service_jobs_completed_total").inc()
            self.log.event("job_cached", request_id=request_id,
                           job_id=job.id, kind=spec.kind,
                           fingerprint=spec.fingerprint)
            return job
        self.metrics.get("service_cache_misses_total").inc()
        self.log.event("job_submitted", request_id=request_id,
                       job_id=job.id, kind=spec.kind,
                       coalescable=spec.group_key is not None)
        self.scheduler.submit(job)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id (``None`` when unknown)."""
        return self.registry.get(job_id)

    def health(self) -> Dict[str, Any]:
        """Liveness document served at ``/healthz``."""
        return {
            "status": "ok",
            "jobs": self.registry.counts(),
            "queued": self.scheduler.queued,
            "cache_entries": len(self.cache),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of all service metrics."""
        return self.metrics.render()

    def _group_done(self, group: List[Job], stats: dict) -> None:
        """Scheduler callback: account one finished dispatch."""
        self.metrics.get("service_engine_dispatches_total").inc()
        if len(group) > 1:
            self.metrics.get("service_jobs_coalesced_total").inc(
                len(group))
        lane_fb = stats.get("fallback_lanes", 0)
        if not isinstance(lane_fb, (int, float)):
            lane_fb = len(lane_fb)
        fallbacks = (lane_fb + stats.get("group_fallback", 0)
                     + stats.get("dc_scalar_fallbacks", 0))
        if fallbacks:
            self.metrics.get("service_lane_fallbacks_total").inc(
                fallbacks)
        solve_hist = self.metrics.get("service_solve_seconds")
        total_hist = self.metrics.get("service_total_seconds")
        wait_hist = self.metrics.get("service_queue_wait_seconds")
        for job in group:
            if job.state == "done":
                self.metrics.get("service_jobs_completed_total").inc()
                self.cache.put(job.spec.fingerprint, job.result)
            else:
                self.metrics.get("service_jobs_failed_total").inc()
                if job.error_kind == "timeout":
                    self.metrics.get(
                        "service_jobs_timeout_total").inc()
            if job.queue_wait is not None:
                wait_hist.observe(job.queue_wait)
            if job.total_seconds is not None:
                total_hist.observe(job.total_seconds)
                solve_hist.observe(job.total_seconds - job.queue_wait)
            self.log.event(
                "job_done" if job.state == "done" else "job_failed",
                request_id=job.request_id, job_id=job.id,
                kind=job.spec.kind, coalesced=job.coalesced,
                total_s=round(job.total_seconds or 0.0, 6),
                error=job.error)

    # -- HTTP front end ------------------------------------------------

    def start(self, host: str = "127.0.0.1",
              port: int = 0) -> Tuple[str, int]:
        """Bind the HTTP server (``port=0`` picks a free port) and
        serve it on a daemon thread; returns ``(host, port)``."""
        if self._httpd is not None:
            raise ServiceError("server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http", daemon=True)
        self._http_thread.start()
        bound_host, bound_port = self._httpd.server_address[:2]
        self.log.event("server_started", host=bound_host,
                       port=bound_port,
                       shutdown_token=self.shutdown_token)
        return str(bound_host), int(bound_port)

    @property
    def port(self) -> Optional[int]:
        """Bound HTTP port (``None`` before :meth:`start`)."""
        if self._httpd is None:
            return None
        return int(self._httpd.server_address[1])

    def shutdown(self) -> None:
        """Stop the HTTP listener and the worker pool."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
                self._http_thread = None
        faults.remove_listener(self._fault_listener)
        stuck = self.scheduler.shutdown(wait=True, timeout=10.0)
        if stuck:
            self.log.event("server_stopped_stuck_workers",
                           threads=stuck)
        self.log.event("server_stopped")

    def __enter__(self) -> "JobServer":
        """Context-manager entry (no side effects)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: full shutdown."""
        self.shutdown()


def _make_handler(server: JobServer):
    """Build the request-handler class bound to one :class:`JobServer`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service"
        protocol_version = "HTTP/1.1"

        def _reply(self, status: int, payload: Any,
                   content_type: str = "application/json",
                   headers: Optional[Dict[str, str]] = None) -> None:
            if isinstance(payload, str):
                body = payload.encode()
            else:
                body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._reply(200, server.health())
            elif path == "/metrics":
                self._reply(200, server.metrics_text(),
                            content_type="text/plain; version=0.0.4")
            elif path.startswith("/jobs/"):
                job = server.job(path[len("/jobs/"):])
                if job is None:
                    self._reply(404, {"error": "unknown job id"})
                else:
                    self._reply(200, job.payload())
            else:
                self._reply(404, {"error": f"no route {path!r}"})

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            path = self.path.split("?", 1)[0]
            if path == "/shutdown":
                token = self.headers.get("X-Shutdown-Token", "")
                if not shutdown_authorized(self.client_address[0],
                                           token,
                                           server.shutdown_token):
                    self._reply(403, {"error": "shutdown requires a "
                                               "valid X-Shutdown-Token "
                                               "header"})
                    return
                self._reply(200, {"ok": True})
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
                return
            if path.startswith("/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/jobs/"):-len("/cancel")]
                job = server.job(job_id)
                if job is None:
                    self._reply(404, {"error": "unknown job id"})
                    return
                changed = job.cancel()
                server.log.event("job_cancel", job_id=job.id,
                                 changed=changed, state=job.state)
                self._reply(200, job.payload())
                return
            if path != "/jobs":
                self._reply(404, {"error": f"no route {path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError):
                self._reply(400, {"error": "body must be valid JSON"})
                return
            try:
                job = server.submit(payload)
            except ServiceOverloadError as exc:
                retry_after = max(1, int(round(exc.retry_after_s)))
                self._reply(503, {"error": str(exc),
                                  "retry_after_s": exc.retry_after_s},
                            headers={"Retry-After": str(retry_after)})
                return
            except ReproError as exc:
                self._reply(400, {"error": str(exc)})
                return
            self._reply(202, job.payload())

        def log_message(self, fmt: str, *args) -> None:
            server.log.event("http", client=self.client_address[0],
                             line=fmt % args)

    return Handler


def serve(*, host: str = "127.0.0.1", port: int = 8080,
          workers: int = 2, batch_window: float = 0.05,
          cache_size: int = 256, max_queue: Optional[int] = None,
          backend: Optional[str] = None,
          block: bool = True,
          logger: Optional[StructuredLogger] = None) -> JobServer:
    """Start a :class:`JobServer` on ``host:port``.

    With ``block=True`` (the CLI path) this runs until interrupted or
    remotely shut down, then returns the (stopped) server; with
    ``block=False`` it returns immediately and the caller owns
    shutdown.  ``max_queue`` bounds the scheduler queue — submissions
    past the bound are refused with HTTP 503 + ``Retry-After``.
    """
    server = JobServer(workers=workers, batch_window=batch_window,
                       cache_size=cache_size, max_queue=max_queue,
                       backend=backend, logger=logger)
    server.start(host=host, port=port)
    if not block:
        return server
    try:
        while True:
            thread = server._http_thread
            if thread is None:
                break
            thread.join(0.2)
    except KeyboardInterrupt:
        server.shutdown()
    return server
