"""Synchronous HTTP client for the job service.

Stdlib-only (``urllib``), mirroring the server's stdlib-only stance.
HTTP error replies and failed jobs surface as
:class:`repro.errors.ServiceError`; transport-level failures (refused
connection, reset, DNS) surface as the
:class:`repro.errors.ServiceTransportError` subclass so callers can
retry those — and only those — safely.  :meth:`ServiceClient.submit`
already does: job submission is idempotent (the server's fingerprint
cache answers a duplicate of an already-finished job without re-running
it), so the client retries transport errors with capped exponential
backoff before giving up.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro import faults
from repro.errors import ServiceError, ServiceTransportError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running :class:`repro.service.JobServer`.

    ``base_url`` is the server root, e.g. ``http://127.0.0.1:8080``.
    ``shutdown_token`` is only needed to :meth:`shutdown` a server
    over a non-loopback connection (the server logs its token at
    start); loopback clients never need it.  ``retries`` bounds the
    extra attempts :meth:`submit` makes after a transport-level
    failure (HTTP error replies are never retried).
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 shutdown_token: Optional[str] = None,
                 retries: int = 2, backoff: float = 0.05) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.shutdown_token = shutdown_token
        self.retries = int(retries)
        self.backoff = float(backoff)

    def _request(self, method: str, path: str,
                 payload: Optional[Any] = None,
                 extra_headers: Optional[Dict[str, str]] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = dict(extra_headers or {})
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers,
                                         method=method)
        faults.sleep_seam("service.latency")
        try:
            if faults.fire("service.transport"):
                raise urllib.error.URLError(
                    "injected transport fault (service.transport)")
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                body = reply.read()
                content_type = reply.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}: {detail}"
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceTransportError(
                f"{method} {path} failed: {exc}") from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body.decode()

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a job spec; returns the job document (with ``id``).

        Transport failures are retried up to ``self.retries`` times
        with capped exponential backoff — safe because submission is
        idempotent through the server's fingerprint cache (a duplicate
        of a finished job is answered from cache, never re-run).
        Error replies from the server (HTTP 4xx/5xx) are not retried
        here; a 503 carries the queue-full message and its
        ``Retry-After`` hint for the caller to honour.
        """
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                return self._request("POST", "/jobs", spec)
            except ServiceTransportError:
                if attempt == self.retries:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> Dict[str, Any]:
        """GET one job's current document (result inline when done)."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """POST ``/jobs/<id>/cancel`` — cooperatively cancel a job.

        Returns the job document after the cancel request.  A queued
        job fails immediately; a running job unwinds at its next
        cancellation check; a finished job is left untouched (the
        request is an acknowledged no-op).
        """
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.02,
             poll_max: float = 0.5) -> Dict[str, Any]:
        """Poll until the job completes; returns the final document.

        The poll interval starts at ``poll`` and backs off
        exponentially to at most ``poll_max``, so short jobs return
        fast without long-running ones hammering the server.

        Raises :class:`repro.errors.ServiceError` when the job failed
        or ``timeout`` elapsed first.  A wait timeout is a *client*
        timeout only: the job keeps running server-side and can still
        be polled, waited on again, or stopped with :meth:`cancel`
        (:meth:`run` does that automatically).  To bound the work
        itself, submit with ``deadline_s`` so the server enforces the
        budget even if this client goes away.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            doc = self.status(job_id)
            if doc["state"] == "done":
                return doc
            if doc["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {doc.get('error')}")
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout:g}s")
            time.sleep(min(interval, max(0.0,
                                         deadline - time.monotonic())))
            interval = min(interval * 1.5, poll_max)

    def run(self, spec: Dict[str, Any], timeout: float = 60.0,
            cancel_on_timeout: bool = True) -> Dict[str, Any]:
        """Submit a job and wait for its final document.

        When the wait times out and ``cancel_on_timeout`` is set (the
        default), the job is cancelled server-side before the timeout
        error propagates, so an abandoned ``run()`` does not leave
        work burning a scheduler slot.  Pass
        ``cancel_on_timeout=False`` to leave the job running (poll or
        :meth:`wait` for it again later).
        """
        doc = self.submit(spec)
        if doc["state"] in ("done", "failed"):
            if doc["state"] == "failed":
                raise ServiceError(
                    f"job {doc['id']} failed: {doc.get('error')}")
            return doc
        try:
            return self.wait(doc["id"], timeout=timeout)
        except ServiceError:
            if cancel_on_timeout:
                try:
                    state = self.status(doc["id"]).get("state")
                    if state in ("queued", "running"):
                        self.cancel(doc["id"])
                except ServiceError:  # pragma: no cover - best effort
                    pass
            raise

    def health(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """GET /metrics (Prometheus text format)."""
        return self._request("GET", "/metrics")

    def metric_value(self, name: str) -> float:
        """Read one un-labelled sample value out of ``/metrics``."""
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2 and parts[0] == name:
                return float(parts[1])
        raise ServiceError(f"no metric {name!r} at /metrics")

    def shutdown(self) -> Dict[str, Any]:
        """POST /shutdown — ask the server to stop cleanly.

        Sends ``X-Shutdown-Token`` when the client holds one; required
        for anything other than a loopback connection.
        """
        headers = ({"X-Shutdown-Token": self.shutdown_token}
                   if self.shutdown_token else None)
        return self._request("POST", "/shutdown",
                             extra_headers=headers)
