"""Synchronous HTTP client for the job service.

Stdlib-only (``urllib``), mirroring the server's stdlib-only stance.
Transport failures, HTTP error replies and failed jobs all surface as
:class:`repro.errors.ServiceError` so callers catch one exception
type; the message carries the server's ``error`` field when present.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running :class:`repro.service.JobServer`.

    ``base_url`` is the server root, e.g. ``http://127.0.0.1:8080``.
    ``shutdown_token`` is only needed to :meth:`shutdown` a server
    over a non-loopback connection (the server logs its token at
    start); loopback clients never need it.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 shutdown_token: Optional[str] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.shutdown_token = shutdown_token

    def _request(self, method: str, path: str,
                 payload: Optional[Any] = None,
                 extra_headers: Optional[Dict[str, str]] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = dict(extra_headers or {})
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                body = reply.read()
                content_type = reply.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}: {detail}"
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc}") from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body.decode()

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a job spec; returns the job document (with ``id``)."""
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        """GET one job's current document (result inline when done)."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.02) -> Dict[str, Any]:
        """Poll until the job completes; returns the final document.

        Raises :class:`repro.errors.ServiceError` when the job failed
        or ``timeout`` elapsed first.
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["state"] == "done":
                return doc
            if doc["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {doc.get('error')}")
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def run(self, spec: Dict[str, Any],
            timeout: float = 60.0) -> Dict[str, Any]:
        """Submit a job and wait for its final document."""
        doc = self.submit(spec)
        if doc["state"] in ("done", "failed"):
            if doc["state"] == "failed":
                raise ServiceError(
                    f"job {doc['id']} failed: {doc.get('error')}")
            return doc
        return self.wait(doc["id"], timeout=timeout)

    def health(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """GET /metrics (Prometheus text format)."""
        return self._request("GET", "/metrics")

    def metric_value(self, name: str) -> float:
        """Read one un-labelled sample value out of ``/metrics``."""
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2 and parts[0] == name:
                return float(parts[1])
        raise ServiceError(f"no metric {name!r} at /metrics")

    def shutdown(self) -> Dict[str, Any]:
        """POST /shutdown — ask the server to stop cleanly.

        Sends ``X-Shutdown-Token`` when the client holds one; required
        for anything other than a loopback connection.
        """
        headers = ({"X-Shutdown-Token": self.shutdown_token}
                   if self.shutdown_token else None)
        return self._request("POST", "/shutdown",
                             extra_headers=headers)
