"""Coalescing job scheduler: a worker pool over a shared queue.

A worker that pops a coalescable job does not dispatch it
immediately — it holds the job for up to ``batch_window`` seconds,
collecting every other queued job with the same ``group_key``
(identical topology + analysis parameters, the
:class:`repro.circuit.LaneBatch` compatibility contract).  The whole
group then runs as *one* ``batch_transient`` / ``batch_dc_sweep``
call, and per-lane results are demuxed back to their jobs.  Lanes
that fail inside the batch fall back through the engine's own scalar
re-run; a dispatch that fails as a whole is retried per job through
the scalar path, so coalescing can change latency but never turn a
solvable job into a failure.

The window is a latency/throughput trade: requests arriving within
``batch_window`` of each other share one stacked solve (the repo's
lane-batching speedups, applied across clients), at the cost of up to
one window of added latency for the first job of a group.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional

from repro import faults
from repro.cancel import CancelToken
from repro.errors import (CancelledError, ParameterError, ReproError,
                          ServiceError, ServiceOverloadError)
from repro.service.jobs import JobSpec, execute_group, execute_spec

__all__ = ["Job", "JobRegistry", "CoalescingScheduler"]

#: Job lifecycle states.
JOB_STATES = ("pending", "running", "done", "failed")


class Job:
    """Runtime record of one submitted job.

    Carries the validated :class:`repro.service.jobs.JobSpec`, the
    lifecycle state, timing marks and (once finished) the result
    payload or error message.  ``wait`` blocks on an internal event
    that :meth:`finish` / :meth:`fail` set.
    """

    def __init__(self, spec: JobSpec,
                 request_id: Optional[str] = None) -> None:
        self.id = uuid.uuid4().hex[:16]
        self.spec = spec
        self.request_id = request_id or self.id
        self.state = "pending"
        self.cached = False
        self.coalesced = 1
        self.result: Optional[Any] = None
        self.error: Optional[str] = None
        #: ``"timeout"`` / ``"cancelled"`` / ``"error"`` once failed
        self.error_kind: Optional[str] = None
        #: per-job ``deadline_s`` budget (None = unbounded), measured
        #: from submission — queue wait counts against it
        self.deadline_s = spec.payload.get("deadline_s")
        #: cooperative cancellation token threaded into the engine
        self.cancel_token = CancelToken(self.deadline_s)
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._done = threading.Event()

    def mark_running(self) -> None:
        """Transition pending -> running (records the start time)."""
        self.started = time.time()
        self.state = "running"

    def finish(self, result: Any, *, cached: bool = False) -> None:
        """Complete the job successfully with ``result``."""
        self.result = result
        self.cached = cached
        self.finished = time.time()
        if self.started is None:
            self.started = self.finished
        self.state = "done"
        self._done.set()

    def fail(self, error: str, *, kind: str = "error") -> None:
        """Complete the job with an error message.

        ``kind`` structures the failure for clients: ``"timeout"``
        (deadline exceeded), ``"cancelled"`` (explicit cancel) or
        ``"error"`` (everything else).
        """
        self.error = error
        self.error_kind = kind
        self.finished = time.time()
        if self.started is None:
            self.started = self.finished
        self.state = "failed"
        self._done.set()

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Request cooperative cancellation; ``False`` when the job
        already finished.

        A queued job fails immediately; a running one unwinds at the
        engine's next cancellation check (per Newton iteration).
        """
        if self.state in ("done", "failed"):
            return False
        self.cancel_token.cancel(reason)
        if self.state == "pending":
            self.fail(reason, kind="cancelled")
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self._done.wait(timeout)

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued before a worker picked the job up."""
        if self.started is None:
            return None
        return self.started - self.submitted

    @property
    def total_seconds(self) -> Optional[float]:
        """Seconds from submission to completion."""
        if self.finished is None:
            return None
        return self.finished - self.submitted

    def payload(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON-able status document served by ``GET /jobs/<id>``."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "fingerprint": self.spec.fingerprint,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "request_id": self.request_id,
        }
        if self.total_seconds is not None:
            doc["timings"] = {
                "queue_wait_s": self.queue_wait,
                "total_s": self.total_seconds,
            }
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.state == "failed":
            doc["error"] = self.error
            doc["error_kind"] = self.error_kind
        elif self.state == "done" and include_result:
            doc["result"] = self.result
        return doc


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with bounded history.

    Finished jobs beyond ``limit`` are evicted oldest-first so a
    long-lived server does not grow without bound; pending/running
    jobs are never evicted.
    """

    def __init__(self, limit: int = 4096) -> None:
        if limit < 1:
            raise ParameterError(f"registry limit must be >= 1: "
                                 f"{limit!r}")
        self.limit = limit
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, job: Job) -> None:
        """Register a job and evict old finished jobs over the limit."""
        with self._lock:
            self._jobs[job.id] = job
            if len(self._jobs) > self.limit:
                for job_id in [jid for jid, j in self._jobs.items()
                               if j.state in ("done", "failed")]:
                    if len(self._jobs) <= self.limit:
                        break
                    del self._jobs[job_id]

    def get(self, job_id: str) -> Optional[Job]:
        """Look up a job by id (``None`` when unknown/evicted)."""
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (for ``/healthz``)."""
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)


class CoalescingScheduler:
    """Worker pool that drains a job queue, coalescing compatible jobs
    into lane-batched engine dispatches.

    ``on_group`` (when given) is called with each dispatched group —
    the server uses it for metrics and cache writes; tests use it to
    observe grouping without reaching into internals.
    """

    def __init__(self, *, workers: int = 2, batch_window: float = 0.05,
                 max_lanes: int = 64, max_queue: Optional[int] = None,
                 backend=None,
                 on_group: Optional[Callable[[List[Job], dict],
                                             None]] = None) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1: {workers!r}")
        if batch_window < 0:
            raise ParameterError(
                f"batch_window must be >= 0: {batch_window!r}")
        if max_lanes < 1:
            raise ParameterError(f"max_lanes must be >= 1: "
                                 f"{max_lanes!r}")
        if max_queue is not None and max_queue < 1:
            raise ParameterError(f"max_queue must be >= 1 or None: "
                                 f"{max_queue!r}")
        self.batch_window = float(batch_window)
        self.max_lanes = int(max_lanes)
        self.max_queue = max_queue
        self.backend = backend
        self._on_group = on_group
        self._queue: "deque[Job]" = deque()
        self._cv = threading.Condition()
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, job: Job) -> None:
        """Enqueue a job for execution.

        Raises :class:`repro.errors.ServiceOverloadError` when the
        queue already holds ``max_queue`` jobs — the HTTP layer turns
        that into 503 + ``Retry-After`` backpressure.
        """
        with self._cv:
            if self._stopping:
                raise ServiceError("scheduler is shutting down")
            if (self.max_queue is not None
                    and len(self._queue) >= self.max_queue):
                raise ServiceOverloadError(
                    f"job queue is full ({self.max_queue} queued); "
                    f"retry later",
                    retry_after_s=max(1.0, self.batch_window * 2))
            self._queue.append(job)
            self._cv.notify_all()

    def shutdown(self, wait: bool = True,
                 timeout: Optional[float] = None) -> List[str]:
        """Stop accepting work and (optionally) join the workers.

        Queued jobs that no worker has claimed are failed with a
        shutdown error so clients never hang on them.  Returns the
        names of worker threads that failed to join within ``timeout``
        (a wedged job holds its thread; an empty list means a clean
        shutdown).
        """
        with self._cv:
            self._stopping = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._cv.notify_all()
        for job in abandoned:
            job.fail("service shut down before the job ran")
        stuck: List[str] = []
        if wait:
            for thread in self._threads:
                thread.join(timeout)
                if thread.is_alive():
                    stuck.append(thread.name)
        return stuck

    @property
    def queued(self) -> int:
        """Number of jobs waiting for a worker."""
        with self._cv:
            return len(self._queue)

    # -- worker internals ---------------------------------------------

    def _pop_matches(self, group_key: str, budget: int) -> List[Job]:
        """Remove up to ``budget`` queued jobs sharing ``group_key``.

        Caller must hold ``self._cv``.
        """
        if budget <= 0:
            return []
        matches: List[Job] = []
        kept: "deque[Job]" = deque()
        while self._queue:
            job = self._queue.popleft()
            if (len(matches) < budget
                    and job.spec.group_key == group_key):
                matches.append(job)
            else:
                kept.append(job)
        self._queue.extend(kept)
        return matches

    def _gather_group(self, first: Job) -> List[Job]:
        """Collect same-``group_key`` jobs for up to ``batch_window``."""
        group = [first]
        key = first.spec.group_key
        deadline = time.monotonic() + self.batch_window
        while len(group) < self.max_lanes:
            with self._cv:
                group.extend(self._pop_matches(
                    key, self.max_lanes - len(group)))
                if len(group) >= self.max_lanes or self._stopping:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
        return group

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait()
                if self._stopping and not self._queue:
                    return
                job = self._queue.popleft()
            if job.spec.group_key is None or self.batch_window == 0:
                group = [job]
            else:
                group = self._gather_group(job)
            self._run_group(group)

    def _run_group(self, group: List[Job]) -> None:
        stats: dict = {}
        # Weed out jobs already decided before dispatch: cancelled
        # while queued, or whose deadline expired in the queue (the
        # budget is measured from submission).
        live: List[Job] = []
        for job in group:
            if job.state in ("done", "failed"):
                continue
            token = job.cancel_token
            if token.cancelled or token.expired:
                try:
                    token.check()
                except CancelledError as exc:
                    job.fail(str(exc), kind=exc.kind)
                continue
            live.append(job)
        group = live
        if not group:
            return
        # Chaos seam: injected dispatch latency (results unchanged).
        faults.sleep_seam("service.latency")
        for job in group:
            job.coalesced = len(group)
            job.mark_running()
        # Deadline/cancel jobs run solo (parse_job_spec clears their
        # group_key), so the token threads cleanly through the scalar
        # engine instead of the lock-step batch loops.
        cancel = group[0].cancel_token if len(group) == 1 else None
        try:
            results = execute_group([job.spec for job in group],
                                    backend=self.backend, stats=stats,
                                    cancel=cancel)
        except CancelledError as exc:
            for job in group:
                job.fail(str(exc), kind=exc.kind)
            if self._on_group is not None:
                try:
                    self._on_group(group, stats)
                except Exception:  # pragma: no cover - defensive
                    pass
            return
        except ReproError:
            # Whole-dispatch failure: retry each job scalar so one
            # poisoned lane (or a batching limitation) cannot take the
            # group down.
            stats["group_fallback"] = len(group)
            results = []
            for job in group:
                try:
                    results.append(execute_spec(
                        job.spec, backend=self.backend,
                        cancel=job.cancel_token))
                except ReproError as exc:
                    results.append(exc)
        except Exception as exc:  # pragma: no cover - defensive
            # Never let an unexpected bug take a worker thread (and
            # with it the whole pool) down; the jobs report it.
            for job in group:
                job.fail(f"internal error: {exc!r}")
            return
        for job, result in zip(group, results):
            if isinstance(result, CancelledError):
                job.fail(str(result), kind=result.kind)
            elif isinstance(result, ReproError):
                job.fail(str(result))
            else:
                job.finish(result)
        # execute_group contracts one entry per job; if a future batch
        # path ever breaks that, fail the unmatched jobs instead of
        # leaving them "running" until the client's wait times out.
        for job in group[len(results):]:
            job.fail(f"internal error: dispatch returned "
                     f"{len(results)} results for {len(group)} jobs")
        if self._on_group is not None:
            try:
                self._on_group(group, stats)
            except Exception:  # pragma: no cover - defensive
                pass  # accounting must never kill a worker
