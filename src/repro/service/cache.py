"""Thread-safe LRU result cache keyed by job fingerprint.

Entries are deep-copied on the way in and out so a cached payload can
never be mutated by one client and observed corrupted by the next —
results are plain JSON-able dicts, so the copy is cheap next to the
solve it replaces.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Optional

from repro.errors import ParameterError

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded least-recently-used mapping of fingerprint -> result.

    ``capacity=0`` disables caching entirely (every lookup misses and
    stores are dropped), which is what ``--cache-size 0`` means.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ParameterError(
                f"cache capacity must be >= 0: {capacity!r}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: str) -> Optional[Any]:
        """Return a copy of the cached value, or ``None`` on a miss.

        A hit refreshes the entry's recency.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(value)

    def put(self, key: str, value: Any) -> None:
        """Store a copy of ``value``, evicting the least recently used
        entry when over capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = copy.deepcopy(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (hit/miss statistics are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        """Number of successful lookups so far."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups so far."""
        with self._lock:
            return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
