"""Job specifications: validation, canonical payloads and execution.

A job arrives as a JSON object with a ``kind`` plus kind-specific
fields.  :func:`parse_job_spec` validates it, parses the netlist deck
(for deck-based kinds), and derives two fingerprints:

* ``fingerprint`` — the result-cache key: circuit values + analysis
  parameters + the ``nodes`` response filter
  (:mod:`repro.service.fingerprint`).  The deck *text* is never
  hashed — two decks that flatten to the same circuit share a cache
  entry.  ``nodes`` must be part of the key because the cache stores
  the filtered result payload: without it a ``nodes=["out"]``
  submission would poison the cache for a later unfiltered one.
* ``group_key`` — the coalescing key: circuit *topology* + the
  analysis parameters that must match for lanes to share one stacked
  solve.  ``None`` marks kinds that always run solo (``op``, ``mc``,
  ``characterize`` — the latter two are already batched internally).

Execution is split the same way: :func:`execute_spec` runs one job
through the scalar engine (also the scheduler's fallback path), and
:func:`execute_group` dispatches a same-``group_key`` group through
``batch_transient`` / ``batch_dc_sweep`` with per-lane demux.

Supported kinds and fields
--------------------------
``transient``
    ``deck`` (netlist text), ``tstop`` [s]; optional ``dt``,
    ``method`` (``trap``/``be``), ``rtol``, ``atol``, ``nodes``
    (restrict returned voltage traces), ``newton`` (mapping of
    :class:`repro.circuit.NewtonOptions` overrides).
``dc``
    ``deck``, ``source`` (swept element) and either ``values`` or
    ``start``/``stop``/``points``; optional ``nodes``, ``newton``.
``op``
    ``deck``; optional ``nodes``, ``newton``.
``mc``
    ``workload`` (see ``repro mc``), optional ``samples``, ``seed``,
    ``sampler``, ``vdd``, ``model``, ``gate``, ``stages``.
``characterize``
    ``gate``; optional ``loads`` [F], ``slews`` [s], ``vdd``,
    ``model``.

Every kind additionally accepts ``deadline_s`` (> 0): a wall-clock
budget measured from submission, enforced through a cooperative
:class:`repro.cancel.CancelToken` threaded into the engine's Newton
loops.  The deadline is *execution policy*, not simulation input, so
it is excluded from both fingerprints — a deadline job still hits (and
fills) the result cache — and it forces ``group_key = None`` so the
token threads through the scalar path rather than a lock-step batch
dispatch.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.circuit.mna import NewtonOptions
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ParameterError, ReproError
from repro.service.fingerprint import (
    circuit_fingerprint,
    describe_circuit,
    manifest_fingerprint,
    topology_fingerprint,
)

__all__ = ["JOB_KINDS", "JobSpec", "parse_job_spec", "execute_spec",
           "execute_group"]

#: Supported job kinds, in documentation order.
JOB_KINDS = ("transient", "dc", "op", "mc", "characterize")

#: Kinds the scheduler may coalesce into one lane-batched engine call.
COALESCABLE_KINDS = ("transient", "dc")

_NEWTON_FIELDS = tuple(f.name for f in dataclasses.fields(NewtonOptions))

_ALLOWED_KEYS = {
    "transient": {"kind", "deck", "tstop", "dt", "method", "rtol",
                  "atol", "nodes", "newton", "deadline_s"},
    "dc": {"kind", "deck", "source", "values", "start", "stop",
           "points", "nodes", "newton", "deadline_s"},
    "op": {"kind", "deck", "nodes", "newton", "deadline_s"},
    "mc": {"kind", "workload", "samples", "seed", "sampler", "vdd",
           "model", "gate", "stages", "deadline_s"},
    "characterize": {"kind", "gate", "loads", "slews", "vdd", "model",
                     "deadline_s"},
}


@dataclass(frozen=True)
class JobSpec:
    """A validated job: canonical payload, fingerprints and (for
    deck-based kinds) the parsed flattened circuit.

    ``payload`` is the canonical JSON-able form with defaults resolved,
    so semantically equal submissions (different whitespace, key
    order, deck comments) produce equal ``fingerprint`` values.
    """

    kind: str
    payload: Dict[str, Any]
    fingerprint: str
    group_key: Optional[str]
    circuit: Optional[Circuit] = None


def _fail(kind: str, message: str) -> ParameterError:
    return ParameterError(f"{kind} job: {message}")


def _get_number(payload: Mapping, key: str, kind: str, *,
                required: bool = False,
                default: Optional[float] = None,
                minimum: Optional[float] = None) -> Optional[float]:
    value = payload.get(key, default)
    if value is None:
        if required:
            raise _fail(kind, f"missing required field {key!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(kind, f"{key!r} must be a number: {value!r}")
    value = float(value)
    if minimum is not None and value <= minimum:
        raise _fail(kind, f"{key!r} must be > {minimum:g}: {value!r}")
    return value


def _get_int(payload: Mapping, key: str, kind: str, *,
             default: Optional[int] = None,
             minimum: int = 0) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(kind, f"{key!r} must be an integer: {value!r}")
    if value < minimum:
        raise _fail(kind, f"{key!r} must be >= {minimum}: {value!r}")
    return value


def _get_str(payload: Mapping, key: str, kind: str, *,
             required: bool = False, default: Optional[str] = None,
             choices: Optional[Sequence[str]] = None) -> Optional[str]:
    value = payload.get(key, default)
    if value is None:
        if required:
            raise _fail(kind, f"missing required field {key!r}")
        return None
    if not isinstance(value, str):
        raise _fail(kind, f"{key!r} must be a string: {value!r}")
    if choices is not None and value not in choices:
        raise _fail(kind, f"{key!r} must be one of {sorted(choices)}: "
                          f"{value!r}")
    return value


def _parse_newton(payload: Mapping, kind: str) -> Dict[str, Any]:
    newton = payload.get("newton", {})
    if not isinstance(newton, Mapping):
        raise _fail(kind, f"'newton' must be an object: {newton!r}")
    canonical: Dict[str, Any] = {}
    for key in sorted(newton):
        if key not in _NEWTON_FIELDS:
            raise _fail(kind, f"unknown newton option {key!r}; "
                              f"expected one of {sorted(_NEWTON_FIELDS)}")
        value = newton[key]
        if isinstance(value, bool):
            canonical[key] = value
        elif isinstance(value, (int, float)):
            canonical[key] = float(value)
        else:
            raise _fail(kind, f"newton option {key!r} must be a "
                              f"number or bool: {value!r}")
    return canonical


def build_newton_options(newton: Mapping[str, Any]) -> NewtonOptions:
    """Apply a job spec's ``newton`` overrides to the engine defaults."""
    if not newton:
        return NewtonOptions()
    kwargs = dict(newton)
    if "max_iterations" in kwargs:
        kwargs["max_iterations"] = int(kwargs["max_iterations"])
    return dataclasses.replace(NewtonOptions(), **kwargs)


def _parse_deck(payload: Mapping, kind: str) -> Circuit:
    from repro.circuit.parser import parse_netlist

    deck = payload.get("deck")
    if not isinstance(deck, str) or not deck.strip():
        raise _fail(kind, "'deck' must be a non-empty netlist string")
    parsed = parse_netlist(deck)
    circuit = parsed.circuit
    if not circuit.elements:
        raise _fail(kind, "deck contains no elements")
    return circuit


def _parse_nodes(payload: Mapping, kind: str,
                 circuit: Circuit) -> Optional[List[str]]:
    nodes = payload.get("nodes")
    if nodes is None:
        return None
    if (not isinstance(nodes, (list, tuple)) or
            not all(isinstance(n, str) for n in nodes)):
        raise _fail(kind, f"'nodes' must be a list of node names: "
                          f"{nodes!r}")
    known = set(circuit.nodes)
    for node in nodes:
        if node not in known:
            raise _fail(kind, f"unknown node {node!r}; circuit nodes: "
                              f"{sorted(known)}")
    return sorted(set(nodes))


def _check_keys(payload: Mapping, kind: str) -> None:
    unknown = sorted(set(payload) - _ALLOWED_KEYS[kind])
    if unknown:
        raise _fail(kind, f"unknown field(s) {unknown}; allowed: "
                          f"{sorted(_ALLOWED_KEYS[kind])}")


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a raw job payload into a :class:`JobSpec`.

    Raises :class:`repro.errors.ParameterError` (or another
    :class:`repro.errors.ReproError` subclass, e.g. a parse error from
    the deck) with a message naming the offending field — the HTTP
    layer maps these to 400 responses.
    """
    if not isinstance(payload, Mapping):
        raise ParameterError(f"job spec must be a JSON object: "
                             f"{type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ParameterError(f"job kind must be one of {list(JOB_KINDS)}: "
                             f"{kind!r}")
    _check_keys(payload, kind)
    deadline_s = _get_number(payload, "deadline_s", kind, minimum=0.0)
    if kind == "transient":
        spec = _parse_transient(payload)
    elif kind == "dc":
        spec = _parse_dc(payload)
    elif kind == "op":
        spec = _parse_op(payload)
    elif kind == "mc":
        spec = _parse_mc(payload)
    else:
        spec = _parse_characterize(payload)
    if deadline_s is not None:
        # Execution policy, attached after the fingerprints are
        # derived: the cache key ignores it, and coalescing is
        # disabled so the cancellation token threads through the
        # scalar engine (see module docstring).
        spec = dataclasses.replace(
            spec, payload=dict(spec.payload, deadline_s=deadline_s),
            group_key=None)
    return spec


def _parse_transient(payload: Mapping) -> JobSpec:
    circuit = _parse_deck(payload, "transient")
    canonical = {
        "kind": "transient",
        "tstop": _get_number(payload, "tstop", "transient",
                             required=True, minimum=0.0),
        "dt": _get_number(payload, "dt", "transient", minimum=0.0),
        "method": _get_str(payload, "method", "transient",
                           default="trap", choices=("trap", "be")),
        "rtol": _get_number(payload, "rtol", "transient", minimum=0.0),
        "atol": _get_number(payload, "atol", "transient", minimum=0.0),
        "nodes": _parse_nodes(payload, "transient", circuit),
        "newton": _parse_newton(payload, "transient"),
    }
    if canonical["dt"] is not None and (canonical["rtol"] is not None
                                        or canonical["atol"] is not None):
        raise _fail("transient", "rtol/atol are adaptive-mode options; "
                                 "omit dt to use the adaptive engine")
    analysis = {k: canonical[k] for k in
                ("dt", "method", "rtol", "atol", "newton")}
    fingerprint = manifest_fingerprint({
        "kind": "transient",
        "circuit": describe_circuit(circuit),
        "analysis": dict(analysis, tstop=canonical["tstop"]),
        "nodes": canonical["nodes"],
    })
    group_key = manifest_fingerprint({
        "kind": "transient",
        "topology": topology_fingerprint(circuit),
        "analysis": analysis,
    })
    return JobSpec("transient", canonical, fingerprint, group_key,
                   circuit)


def _parse_dc(payload: Mapping) -> JobSpec:
    from repro.circuit.elements.sources import (CurrentSource,
                                                VoltageSource)

    circuit = _parse_deck(payload, "dc")
    source_name = _get_str(payload, "source", "dc", required=True)
    source = circuit.element(source_name)  # NetlistError if unknown
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise _fail("dc", f"{source_name!r} is not an independent "
                          f"source")
    raw_values = payload.get("values")
    if raw_values is not None:
        if (not isinstance(raw_values, (list, tuple)) or not raw_values
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool)
                           for v in raw_values)):
            raise _fail("dc", f"'values' must be a non-empty list of "
                              f"numbers: {raw_values!r}")
        values = [float(v) for v in raw_values]
    else:
        start = _get_number(payload, "start", "dc", required=True)
        stop = _get_number(payload, "stop", "dc", required=True)
        points = _get_int(payload, "points", "dc", default=21,
                          minimum=2)
        values = [float(v) for v in np.linspace(start, stop, points)]
    canonical = {
        "kind": "dc",
        "source": source_name,
        "values": values,
        "nodes": _parse_nodes(payload, "dc", circuit),
        "newton": _parse_newton(payload, "dc"),
    }
    analysis = {"source": source_name, "values": values,
                "newton": canonical["newton"]}
    fingerprint = manifest_fingerprint({
        "kind": "dc",
        "circuit": describe_circuit(circuit),
        "analysis": analysis,
        "nodes": canonical["nodes"],
    })
    group_key = manifest_fingerprint({
        "kind": "dc",
        "topology": topology_fingerprint(circuit),
        "analysis": analysis,
    })
    return JobSpec("dc", canonical, fingerprint, group_key, circuit)


def _parse_op(payload: Mapping) -> JobSpec:
    circuit = _parse_deck(payload, "op")
    canonical = {
        "kind": "op",
        "nodes": _parse_nodes(payload, "op", circuit),
        "newton": _parse_newton(payload, "op"),
    }
    fingerprint = manifest_fingerprint({
        "kind": "op",
        "circuit": describe_circuit(circuit),
        "analysis": {"newton": canonical["newton"]},
        "nodes": canonical["nodes"],
    })
    return JobSpec("op", canonical, fingerprint, None, circuit)


def _parse_mc(payload: Mapping) -> JobSpec:
    from repro.experiments.workloads import VARIABILITY_WORKLOADS

    canonical = {
        "kind": "mc",
        "workload": _get_str(payload, "workload", "mc", required=True,
                             choices=tuple(VARIABILITY_WORKLOADS)),
        "samples": _get_int(payload, "samples", "mc", default=64,
                            minimum=1),
        "seed": _get_int(payload, "seed", "mc", default=0),
        "sampler": _get_str(payload, "sampler", "mc", default="mc"),
        "vdd": _get_number(payload, "vdd", "mc", default=None,
                           minimum=0.0),
        "model": _get_str(payload, "model", "mc", default="model2"),
        "gate": _get_str(payload, "gate", "mc", default="nand2"),
        "stages": _get_int(payload, "stages", "mc", default=3,
                           minimum=1),
    }
    fingerprint = manifest_fingerprint(canonical)
    return JobSpec("mc", canonical, fingerprint, None, None)


def _parse_characterize(payload: Mapping) -> JobSpec:
    def _float_list(key: str, default: List[float]) -> List[float]:
        raw = payload.get(key, default)
        if (not isinstance(raw, (list, tuple)) or not raw
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool) and v > 0
                           for v in raw)):
            raise _fail("characterize",
                        f"{key!r} must be a non-empty list of positive "
                        f"numbers: {raw!r}")
        return [float(v) for v in raw]

    canonical = {
        "kind": "characterize",
        "gate": _get_str(payload, "gate", "characterize",
                         required=True),
        "loads": _float_list("loads", [1e-15]),
        "slews": _float_list("slews", [2e-11]),
        "vdd": _get_number(payload, "vdd", "characterize", default=0.9,
                           minimum=0.0),
        "model": _get_str(payload, "model", "characterize",
                          default="model2"),
    }
    fingerprint = manifest_fingerprint(canonical)
    return JobSpec("characterize", canonical, fingerprint, None, None)


# ----------------------------------------------------------------------
# Execution


def _dc_trace_names(circuit: Circuit) -> List[str]:
    """Traces a DC-sweep job returns: node voltages plus voltage-source
    branch currents — the set both the scalar and lane-batched sweep
    produce, so a job's payload does not depend on whether it
    coalesced."""
    from repro.circuit.elements.sources import VoltageSource

    names = [f"v({node})" for node in circuit.nodes]
    names += [f"i({el.name})" for el in
              circuit.iter_elements(VoltageSource)]
    return sorted(name.lower() for name in names)


def _dataset_payload(dataset, nodes: Optional[Sequence[str]],
                     allowed: Optional[Sequence[str]] = None) -> dict:
    if nodes is not None:
        names = [f"v({node})" for node in nodes]
    elif allowed is not None:
        names = [name for name in allowed if name in dataset]
    else:
        names = dataset.names
    return {
        "axis_name": dataset.axis_name,
        "axis": [float(v) for v in dataset.axis],
        "traces": {name: [float(v) for v in dataset.trace(name)]
                   for name in names},
    }


def _adaptive_kwargs(payload: Mapping) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if payload.get("rtol") is not None:
        kwargs["rtol"] = payload["rtol"]
    if payload.get("atol") is not None:
        kwargs["atol"] = payload["atol"]
    return kwargs


def execute_spec(spec: JobSpec, *, backend=None,
                 stats: Optional[dict] = None,
                 cancel=None) -> dict:
    """Run one job through the scalar in-process engine.

    This is both the solo path for non-coalescable kinds and the
    scheduler's per-job fallback when a batched dispatch fails as a
    whole.  Returns the JSON-able result payload; raises
    :class:`repro.errors.ReproError` on failure.  ``cancel`` (a
    :class:`repro.cancel.CancelToken`) threads into the engine's
    Newton/sweep/campaign loops for the ``transient``/``dc``/``op``/
    ``mc`` kinds — how the scheduler enforces per-job deadlines.
    """
    payload = spec.payload
    if spec.kind == "transient":
        from repro.circuit.transient import transient

        dataset = transient(
            spec.circuit, payload["tstop"], dt=payload["dt"],
            method=payload["method"],
            options=build_newton_options(payload["newton"]),
            record_currents="sources", stats=stats,
            backend=backend, cancel=cancel,
            **_adaptive_kwargs(payload))
        return _dataset_payload(dataset, payload["nodes"])
    if spec.kind == "dc":
        from repro.circuit.dc import dc_sweep

        dataset = dc_sweep(spec.circuit, payload["source"],
                           payload["values"],
                           options=build_newton_options(
                               payload["newton"]),
                           backend=backend, cancel=cancel)
        return _dataset_payload(dataset, payload["nodes"],
                                allowed=_dc_trace_names(spec.circuit))
    if spec.kind == "op":
        from repro.circuit.dc import operating_point

        op = operating_point(spec.circuit,
                             options=build_newton_options(
                                 payload["newton"]),
                             backend=backend, cancel=cancel)
        voltages = op.as_dict()
        if payload["nodes"] is not None:
            voltages = {f"v({node})": voltages[f"v({node})"]
                        for node in payload["nodes"]}
        return {"voltages": voltages}
    if spec.kind == "mc":
        return _execute_mc(payload, backend, cancel)
    return _execute_characterize(payload, backend)


def _execute_mc(payload: Mapping, backend, cancel=None) -> dict:
    from repro.experiments.workloads import variability_workload
    from repro.variability.campaign import Campaign, CampaignConfig

    workload_kwargs: Dict[str, Any] = {
        "model": payload["model"], "gate": payload["gate"],
        "stages": payload["stages"], "backend": backend,
    }
    if payload["vdd"] is not None:
        workload_kwargs["vdd"] = payload["vdd"]
    space, evaluator = variability_workload(payload["workload"],
                                            **workload_kwargs)
    config = CampaignConfig(name=payload["workload"],
                            n_samples=payload["samples"],
                            seed=payload["seed"],
                            sampler=payload["sampler"])
    campaign = Campaign(config, space, evaluator)
    return campaign.run(resume=False, cancel=cancel).to_json_dict()


def _execute_characterize(payload: Mapping, backend) -> dict:
    from repro.characterize import characterize_gate
    from repro.circuit.logic import LogicFamily

    family = LogicFamily.default(vdd=payload["vdd"],
                                 model=payload["model"])
    table = characterize_gate(family, payload["gate"],
                              loads=tuple(payload["loads"]),
                              slews=tuple(payload["slews"]),
                              backend=backend)
    return table.to_json_dict()


def execute_group(specs: Sequence[JobSpec], *, backend=None,
                  stats: Optional[dict] = None,
                  cancel=None) -> List[Union[dict, ReproError]]:
    """Dispatch a same-``group_key`` group as one lane-batched engine
    call and demux the per-lane results.

    Returns one entry per job, in order: the result payload, or the
    per-lane :class:`repro.errors.ReproError` for lanes that failed
    even after the engine's own scalar fallback.  Raises only when the
    *whole* dispatch fails (the scheduler then retries each job
    through :func:`execute_spec`).  ``cancel`` applies to the
    single-spec path only — deadline jobs never coalesce
    (``group_key`` is cleared at parse time), so the batch loops stay
    token-free.
    """
    if len(specs) == 1:
        return [execute_spec(specs[0], backend=backend, stats=stats,
                             cancel=cancel)]
    first = specs[0].payload
    circuits = [spec.circuit for spec in specs]
    options = build_newton_options(first["newton"])
    if specs[0].kind == "transient":
        from repro.circuit.batch_sim import batch_transient

        tstops = [spec.payload["tstop"] for spec in specs]
        result = batch_transient(
            circuits, tstops, dt=first["dt"], method=first["method"],
            options=options, record_currents="sources", stats=stats,
            backend=backend, scalar_fallback=True,
            **_adaptive_kwargs(first))
        out: List[Union[dict, ReproError]] = []
        for lane, spec in enumerate(specs):
            try:
                dataset = result[lane]
            except AnalysisError as exc:
                out.append(exc)
                continue
            out.append(_dataset_payload(dataset,
                                        spec.payload["nodes"]))
        return out
    # dc: one stacked sweep over the shared grid
    from repro.circuit.batch_sim import batch_dc_sweep

    datasets = batch_dc_sweep(circuits, first["source"],
                              first["values"], options=options,
                              stats=stats, backend=backend)
    return [_dataset_payload(dataset, spec.payload["nodes"],
                             allowed=_dc_trace_names(spec.circuit))
            for dataset, spec in zip(datasets, specs)]
