"""Canonical fingerprints for circuits, analyses and manifests.

The job service needs two notions of "same circuit", at different
granularities:

* **Topology** — what :class:`repro.circuit.LaneBatch` validates:
  element count and, per slot, type / name / nodes / auxiliary-row
  layout.  Jobs with equal :func:`topology_fingerprint` can advance
  lock-step through one stacked MNA solve even when their component
  values differ, so this is the coalescing group key.
* **Values** — topology *plus* every numerical parameter (resistances,
  waveform timings, quantized CNFET device parameters).  Jobs with
  equal :func:`circuit_fingerprint` and equal analysis parameters
  compute the same answer, so this backs the result cache.

Both reduce to :func:`manifest_fingerprint` — SHA-256 over
``json.dumps(payload, sort_keys=True)`` — which is byte-identical to
the historical ``Campaign.fingerprint`` canonicalisation, so service
cache keys and campaign resume directories agree on what "same
manifest" means (``variability/campaign.py`` now delegates here).

Floats are quantized to :data:`SIG_FIGS` significant digits before
hashing.  This absorbs parse/format round-trip noise (``1e-15`` vs
``0.000000000000001``) without conflating genuinely different values —
deliberately *finer* than the coarse per-field decimals
``variability.campaign.quantize_sample`` uses for Monte-Carlo dedup,
because a result cache must never serve a neighbouring circuit's
waveform.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.circuit.elements.capacitor import Capacitor
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.diode import Diode
from repro.circuit.elements.inductor import Inductor
from repro.circuit.elements.resistor import Resistor
from repro.circuit.elements.sources import CurrentSource, VoltageSource
from repro.circuit.netlist import Circuit

__all__ = [
    "SIG_FIGS",
    "canonical_json",
    "manifest_fingerprint",
    "describe_element",
    "describe_circuit",
    "topology_fingerprint",
    "circuit_fingerprint",
]

#: Significant digits kept when quantizing floats for hashing.
SIG_FIGS = 12


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to the canonical JSON form that every
    fingerprint in the project hashes: ``json.dumps`` with sorted keys
    and default separators (the historical ``Campaign.fingerprint``
    canonicalisation, unchanged byte for byte)."""
    return json.dumps(payload, sort_keys=True)


def manifest_fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``.

    This is *the* fingerprint primitive: campaign manifests, circuit
    descriptions and job cache keys all pass through here, so two
    subsystems can only disagree about identity by disagreeing about
    the payload they describe.
    """
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _quantize(value: float) -> Union[float, str]:
    """Round a float to :data:`SIG_FIGS` significant digits.

    Non-finite values hash as their string form (JSON would emit
    bare ``NaN``/``Infinity`` whose textual form is stable anyway, but
    the string keeps the canonical payload strictly valid JSON).
    """
    if not math.isfinite(value):
        return repr(value)
    return float(f"{value:.{SIG_FIGS}g}")


def _canonical_value(obj: Any) -> Any:
    """Recursively convert ``obj`` into a JSON-able, quantized form."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return _quantize(obj)
    if isinstance(obj, Mapping):
        return {str(k): _canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical_value(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical_value(dataclasses.asdict(obj))
    return repr(obj)


def _describe_device(element: CNFETElement) -> Dict[str, Any]:
    """Value-level description of a CNFET element's device backend."""
    device = element.backend.device
    desc: Dict[str, Any] = {
        "kind": type(device).__name__,
        "params": _canonical_value(device.params),
    }
    fitted = getattr(device, "fitted", None)
    if fitted is not None:
        desc["model"] = fitted.spec.name
    return desc


def _element_params(element: Any) -> Dict[str, Any]:
    """Value-level (non-topological) parameters of one element."""
    if isinstance(element, Resistor):
        return {"resistance": _quantize(element.resistance)}
    if isinstance(element, Capacitor):
        params: Dict[str, Any] = {
            "capacitance": _quantize(element.capacitance)}
        if element.initial_voltage is not None:
            params["ic"] = _quantize(float(element.initial_voltage))
        return params
    if isinstance(element, Inductor):
        return {"inductance": _quantize(element.inductance)}
    if isinstance(element, (VoltageSource, CurrentSource)):
        waveform = element.waveform
        return {"waveform": {"kind": type(waveform).__name__,
                             **_canonical_value(
                                 dataclasses.asdict(waveform))}}
    if isinstance(element, Diode):
        return {"saturation_current": _quantize(element.saturation_current),
                "n_vt": _quantize(element.n_vt)}
    if isinstance(element, CNFETElement):
        return {"device": _describe_device(element),
                "polarity": element.polarity,
                "length_m": _quantize(element.length_m)}
    # Unknown element class: hash every public scalar attribute so a
    # new element type degrades to a conservative (over-specific)
    # fingerprint rather than a colliding one.
    params = {}
    for key, value in sorted(vars(element).items()):
        if key.startswith("_") or key in ("name", "nodes", "aux_index"):
            continue
        if isinstance(value, (bool, int, float, str)):
            params[key] = _canonical_value(value)
    params["class"] = f"{type(element).__module__}.{type(element).__name__}"
    return params


def describe_element(element: Any, *,
                     topology_only: bool = False) -> Dict[str, Any]:
    """Canonical JSON-able description of one flattened element.

    With ``topology_only=True`` the description is exactly the contract
    :class:`repro.circuit.LaneBatch` validates per slot (type, name,
    nodes, auxiliary-row count); otherwise it additionally carries the
    quantized component values.
    """
    desc: Dict[str, Any] = {
        "type": type(element).__name__,
        "name": element.name,
        "nodes": list(element.nodes),
        "n_aux": int(element.n_aux),
    }
    if not topology_only:
        desc["params"] = _element_params(element)
    return desc


def describe_circuit(circuit: Circuit, *,
                     topology_only: bool = False) -> Dict[str, Any]:
    """Canonical description of a flattened circuit.

    The deck title is deliberately excluded: two decks differing only
    in comments, title or formatting describe the same circuit and
    must hash identically.
    """
    return {
        "nodes": list(circuit.nodes),
        "dimension": int(circuit.dimension()),
        "elements": [describe_element(el, topology_only=topology_only)
                     for el in circuit.elements],
    }


def topology_fingerprint(circuit: Circuit) -> str:
    """Fingerprint of the lane-batching topology contract.

    Two circuits with equal topology fingerprints can ride in one
    :class:`repro.circuit.LaneBatch` (same dimension, node map, and
    per-slot element type/name/nodes/aux layout), regardless of their
    component values.
    """
    return manifest_fingerprint(describe_circuit(circuit,
                                                 topology_only=True))


def circuit_fingerprint(circuit: Circuit) -> str:
    """Fingerprint of the full circuit identity: topology plus
    quantized component and device parameters.

    Equal fingerprints mean the engine would compute the same answer,
    which is what makes this safe as a result-cache key component.
    """
    return manifest_fingerprint(describe_circuit(circuit))
