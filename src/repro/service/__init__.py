"""Simulation-as-a-service: a job server over the lane-batched engine.

The lane-batched MNA engine advances many same-topology circuits
through one stacked solve; this package gives it a front door.  A
stdlib-only threaded HTTP server accepts JSON job specs (netlist-deck
transient/DC sweeps, operating points, Monte-Carlo chunks,
characterization point sets), a canonical circuit **fingerprint**
backs an LRU result cache, and a **coalescing scheduler** groups
pending same-topology jobs inside a short batching window so
independent clients transparently share one ``batch_transient`` /
``batch_dc_sweep`` dispatch.  Counters and latency histograms are
exported in Prometheus text format at ``/metrics``.

Quick start::

    from repro.service import JobServer, ServiceClient

    with JobServer(batch_window=0.05) as server:
        host, port = server.start()
        client = ServiceClient(f"http://{host}:{port}")
        doc = client.run({"kind": "transient", "deck": deck,
                          "tstop": 2e-10, "dt": 1e-12})
        print(doc["result"]["traces"].keys())

or from the command line: ``repro serve --port 8080``.  See
``docs/service.md`` for the full API schema and semantics.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.fingerprint import (
    canonical_json,
    circuit_fingerprint,
    describe_circuit,
    describe_element,
    manifest_fingerprint,
    topology_fingerprint,
)
from repro.service.jobs import (
    JOB_KINDS,
    JobSpec,
    execute_group,
    execute_spec,
    parse_job_spec,
)
from repro.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    StructuredLogger,
    new_request_id,
)
from repro.service.scheduler import CoalescingScheduler, Job, JobRegistry
from repro.service.server import (
    SERVICE_COUNTERS,
    SERVICE_HISTOGRAMS,
    JobServer,
    serve,
    shutdown_authorized,
)

__all__ = [
    "JOB_KINDS",
    "SERVICE_COUNTERS",
    "SERVICE_HISTOGRAMS",
    "CoalescingScheduler",
    "Counter",
    "Histogram",
    "Job",
    "JobRegistry",
    "JobServer",
    "JobSpec",
    "MetricsRegistry",
    "ResultCache",
    "ServiceClient",
    "StructuredLogger",
    "canonical_json",
    "circuit_fingerprint",
    "describe_circuit",
    "describe_element",
    "execute_group",
    "execute_spec",
    "manifest_fingerprint",
    "new_request_id",
    "parse_job_spec",
    "serve",
    "shutdown_authorized",
    "topology_fingerprint",
]
