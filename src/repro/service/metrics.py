"""Stdlib-only observability primitives: counters, histograms,
Prometheus text exposition and structured JSON logging.

The job server wires these into every request, but nothing here knows
about HTTP or jobs — ``Campaign.run`` or ``characterize_gate`` can
adopt the same registry later without pulling in the service.

Exposition follows the Prometheus text format (version 0.0.4): one
``# HELP`` / ``# TYPE`` header per metric, cumulative ``_bucket``
series with ``le`` labels for histograms, ``_sum`` and ``_count``
totals.  Only the subset the service needs is implemented — unlabelled
counters and fixed-bucket histograms — which keeps the module
dependency-free.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "new_request_id",
]

#: Default latency buckets [s] — spans sub-millisecond cache hits to
#: multi-second batched solves.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def new_request_id() -> str:
    """A short unique id correlating log lines for one request."""
    return uuid.uuid4().hex[:16]


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without the
    trailing ``.0`` noise."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing metric (Prometheus ``counter``)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease: {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative value."""
        with self._lock:
            return self._value

    def render(self) -> str:
        """Prometheus text-format block for this counter."""
        return (f"# HELP {self.name} {self.help_text}\n"
                f"# TYPE {self.name} counter\n"
                f"{self.name} {_format_value(self.value)}\n")


class Histogram:
    """A fixed-bucket distribution metric (Prometheus ``histogram``)."""

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help_text = help_text
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if not bounds:
            raise ParameterError(
                f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Approximate the ``q`` quantile (0..1) from bucket counts.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q`` of the observations (the usual
        ``histogram_quantile`` coarsening); the top bucket bound when
        everything landed above the last finite bucket; ``nan`` when
        empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1]: {q!r}")
        with self._lock:
            if self._count == 0:
                return float("nan")
            target = q * self._count
            for bound, cumulative in zip(self.buckets, self._counts):
                if cumulative >= target:
                    return bound
            return self.buckets[-1]

    def render(self) -> str:
        """Prometheus text-format block for this histogram."""
        with self._lock:
            lines = [f"# HELP {self.name} {self.help_text}",
                     f"# TYPE {self.name} histogram"]
            for bound, cumulative in zip(self.buckets, self._counts):
                lines.append(f'{self.name}_bucket{{le="{bound!r}"}} '
                             f"{cumulative}")
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Named collection of metrics with one text exposition endpoint.

    ``counter``/``histogram`` are get-or-create, so independent call
    sites can share a metric by name; asking for an existing name with
    a different metric type raises :class:`ParameterError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Histogram]] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(Counter, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def _get_or_create(self, cls, name, help_text, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    def get(self, name: str) -> Union[Counter, Histogram]:
        """Look up a metric by name (:class:`ParameterError` if absent)."""
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise ParameterError(f"no metric {name!r}") from None

    def names(self) -> List[str]:
        """Sorted names of all registered metrics."""
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """All metrics in Prometheus text format, sorted by name."""
        with self._lock:
            metrics = [self._metrics[name]
                       for name in sorted(self._metrics)]
        return "".join(metric.render() for metric in metrics)


class StructuredLogger:
    """JSON-lines event logger with stable field ordering.

    Each call to :meth:`event` emits one JSON object (sorted keys)
    carrying ``ts``, ``event`` and the given fields, through the
    stdlib ``logging`` machinery — handlers/levels configured by the
    application apply as usual.  Pass ``stream`` to attach a dedicated
    handler (the ``serve`` CLI points it at stderr).
    """

    def __init__(self, name: str = "repro.service",
                 stream: Optional[TextIO] = None) -> None:
        self._logger = logging.getLogger(name)
        if stream is not None:
            handler = logging.StreamHandler(stream)
            handler.setFormatter(logging.Formatter("%(message)s"))
            self._logger.addHandler(handler)
            self._logger.setLevel(logging.INFO)

    def event(self, event: str, **fields) -> None:
        """Emit one structured log line for ``event``."""
        payload = {"ts": round(time.time(), 6), "event": event}
        payload.update(fields)
        self._logger.info("%s", json.dumps(payload, sort_keys=True,
                                           default=repr))
