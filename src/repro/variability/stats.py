"""Distribution summaries for campaign aggregation.

Per-metric aggregation over run records: moments, percentiles and
spec-limit yield, plus a small ASCII histogram for terminal reports
(rendered with the same look as :mod:`repro.experiments.report`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["summarize", "yield_fraction", "aggregate_metrics",
           "histogram_ascii"]

#: Percentiles reported in every aggregate table.
PERCENTILES = (1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Moments + percentiles of one metric distribution.

    NaNs (failed runs) are excluded but counted in ``n_failed``.
    """
    arr = np.asarray(values, dtype=float)
    finite = arr[np.isfinite(arr)]
    out: Dict[str, float] = {
        "n": int(arr.size),
        "n_failed": int(arr.size - finite.size),
    }
    if finite.size == 0:
        for key in ("mean", "std", "min", "max", "cv"):
            out[key] = math.nan
        for p in PERCENTILES:
            out[f"p{p:g}"] = math.nan
        return out
    out["mean"] = float(np.mean(finite))
    out["std"] = float(np.std(finite, ddof=1)) if finite.size > 1 else 0.0
    out["min"] = float(np.min(finite))
    out["max"] = float(np.max(finite))
    out["cv"] = (out["std"] / abs(out["mean"])
                 if out["mean"] != 0.0 else math.nan)
    for p, v in zip(PERCENTILES, np.percentile(finite, PERCENTILES)):
        out[f"p{p:g}"] = float(v)
    return out


def yield_fraction(values: Sequence[float],
                   low: Optional[float] = None,
                   high: Optional[float] = None) -> float:
    """Fraction of finite samples inside ``[low, high]`` (either bound
    may be ``None`` for one-sided specs).  Failed (NaN) runs count as
    yield losses."""
    if low is None and high is None:
        raise ParameterError("yield_fraction needs at least one bound")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return math.nan
    ok = np.isfinite(arr)
    if low is not None:
        ok &= arr >= low
    if high is not None:
        ok &= arr <= high
    return float(np.count_nonzero(ok) / arr.size)


def aggregate_metrics(records: Sequence[Mapping],
                      spec_limits: Optional[Mapping[str, Tuple]] = None
                      ) -> Dict[str, Dict[str, float]]:
    """Aggregate a run table: one summary dict per metric name.

    ``records`` are per-run dicts with a ``"metrics"`` mapping.
    ``spec_limits`` maps metric name to ``(low, high)`` (``None`` for an
    open bound); matching metrics gain a ``"yield"`` entry.
    """
    names: List[str] = []
    for rec in records:
        for name in rec["metrics"]:
            if name not in names:
                names.append(name)
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        values = [rec["metrics"].get(name, math.nan) for rec in records]
        summary = summarize(values)
        if spec_limits and name in spec_limits:
            low, high = spec_limits[name]
            summary["spec_low"] = low
            summary["spec_high"] = high
            summary["yield"] = yield_fraction(values, low, high)
        out[name] = summary
    return out


def histogram_ascii(values: Sequence[float], bins: int = 12,
                    width: int = 40, title: str = "") -> str:
    """Horizontal-bar histogram for terminal reports."""
    if bins < 1:
        raise ParameterError(f"need at least one bin: {bins}")
    arr = np.asarray(values, dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return f"{title}\n(no finite samples)" if title else "(no finite samples)"
    counts, edges = np.histogram(finite, bins=bins)
    peak = max(int(np.max(counts)), 1)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(
            f"  [{edges[i]:+.4g}, {edges[i + 1]:+.4g})  "
            f"{bar}{' ' if bar else ''}{count}"
        )
    return "\n".join(lines)
