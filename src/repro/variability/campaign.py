"""Run-table Monte-Carlo campaign engine.

A campaign is *samples x evaluator*: the sampler turns a seed into a
deterministic run table of device-parameter samples, the evaluator turns
samples into per-run metric records, and the engine handles chunked
execution, on-disk persistence, resume and aggregation:

``run_dir/``
    ``manifest.json``   config + space + evaluator fingerprint
    ``chunks/chunk_0000.json``  per-run records of one chunk
    ``run_table.csv``   one row per run (knobs + metrics)
    ``aggregate.json``  per-metric summary (moments, percentiles, yield)

Resume: re-running a campaign pointed at an existing run directory
verifies the manifest fingerprint (same seed, sampler, space and
evaluator — anything else is a different experiment and refuses to mix)
and recomputes only the chunks whose files are missing, so an
interrupted 10k-sample campaign continues where it stopped.  Corrupt
or truncated chunk files — the shape a crash mid-write leaves behind —
are moved to ``chunks/quarantine/`` and recomputed rather than
crashing the resume; a corrupt *manifest* quarantines the whole run
directory's records (nothing on disk is verifiable without the
fingerprint) and starts fresh.  See ``docs/robustness.md``.

The device-metric evaluator is the scale workload for the batch engine:
samples are grouped by their *quantised* device key, each distinct
device is fitted once (through the module-level fit cache of
:mod:`repro.pwl.device`) and all of its bias points are evaluated in a
single ``ids_batch``/``solve_many`` pass.
"""

from __future__ import annotations

import json
import logging
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.cancel import CancelToken
from repro.errors import CampaignError, ParameterError
from repro.experiments.report import ascii_table
from repro.variability.params import ParameterSpace
from repro.variability.sampling import SAMPLERS, sample_space
from repro.variability.stats import aggregate_metrics, histogram_ascii

__all__ = [
    "CampaignConfig", "Campaign", "CampaignResult",
    "DeviceMetricsEvaluator", "quantize_sample", "QUANTIZE_DECIMALS",
]

_log = logging.getLogger("repro.variability.campaign")

#: Default decimals when quantising sampled knobs into device keys.
#: Diameter is snapped to a discrete tube by the band structure anyway;
#: the analog knobs are binned at resolutions below which the metric
#: shift is buried in the model's own fitting error.
QUANTIZE_DECIMALS: Dict[str, int] = {
    "diameter_nm": 2,
    "tox_nm": 2,
    "kappa": 2,
    "fermi_level_ev": 3,
    "temperature_k": 1,
    "transmission": 3,
}


def quantize_sample(sample: Mapping,
                    decimals: Optional[Mapping[str, int]] = None
                    ) -> Tuple:
    """Hashable quantised device key of a sample (knob order preserved).

    A continuous ``diameter_nm`` is resolved to its discrete
    semiconducting tube — that mapping is *exact*, not an
    approximation: the physics (band structure and capacitances) only
    ever sees the chirality-derived diameter, so two samples snapping to
    the same tube are the same device.  The analog knobs are rounded to
    ``decimals`` places; at the defaults the induced metric shift stays
    below the compact model's own fitting error.
    """
    decimals = QUANTIZE_DECIMALS if decimals is None else decimals
    key = []
    for name, value in sample.items():
        if isinstance(value, tuple):
            key.append((name, tuple(int(x) for x in value)))
        elif name == "diameter_nm" and "chirality" not in sample:
            from repro.physics.bandstructure import Chirality

            ch = Chirality.from_diameter(float(value))
            key.append(("chirality", (ch.n, ch.m)))
        elif name == "diameter_nm":
            continue  # chirality overrides diameter entirely
        else:
            nd = decimals.get(name)
            v = float(value)
            key.append((name, round(v, nd) if nd is not None else v))
    return tuple(key)


# ----------------------------------------------------------------------
# Device-metric evaluator (the batch-path workload)
# ----------------------------------------------------------------------

#: Metric extractors available on the device workload.
DEVICE_METRICS = ("ion", "ioff", "vth", "gm", "ion_ioff_ratio")


class DeviceMetricsEvaluator:
    """Ion / Ioff / Vth / gm over sampled devices, batched per distinct
    quantised device.

    Per distinct device a single :meth:`CNFET.ids_batch` call covers the
    whole VG transfer grid (which yields Ion, Ioff and the
    constant-current Vth) plus the two central-difference points for gm
    — one ``solve_many`` pass instead of ~``grid+4`` scalar solves per
    sample.
    """

    def __init__(self, space: ParameterSpace,
                 metrics: Sequence[str] = ("ion", "ioff", "vth", "gm"),
                 vdd: float = 0.6,
                 model: str = "model2",
                 vth_points: int = 25,
                 icrit_a: float = 1e-6,
                 gm_delta: float = 1e-3,
                 quantize: Optional[Mapping[str, int]] = None,
                 spec_limits: Optional[Mapping[str, Tuple]] = None) -> None:
        unknown = [m for m in metrics if m not in DEVICE_METRICS]
        if unknown:
            raise ParameterError(
                f"unknown device metrics {unknown}; expected a subset of "
                f"{DEVICE_METRICS}"
            )
        if vth_points < 3:
            raise ParameterError(f"vth_points must be >= 3: {vth_points}")
        self.space = space
        self.metrics = tuple(metrics)
        self.vdd = float(vdd)
        self.model = model
        self.vth_points = int(vth_points)
        self.icrit_a = float(icrit_a)
        self.gm_delta = float(gm_delta)
        self.quantize = dict(quantize) if quantize is not None else None
        self.spec_limits = dict(spec_limits) if spec_limits else None
        #: metric memo per quantised key, shared across chunks
        self._memo: Dict[Tuple, Dict[str, float]] = {}

    # -- identity ------------------------------------------------------

    def describe(self) -> Dict:
        """JSON-able evaluator fingerprint (campaign manifests)."""
        return {
            "kind": "device-metrics",
            "metrics": list(self.metrics),
            "vdd": self.vdd,
            "model": self.model,
            "vth_points": self.vth_points,
            "icrit_a": self.icrit_a,
            "gm_delta": self.gm_delta,
            "quantize": self.quantize,
            "spec_limits": {k: list(v) for k, v in self.spec_limits.items()}
            if self.spec_limits else None,
        }

    # -- evaluation ----------------------------------------------------

    def _device_metrics(self, key: Tuple) -> Dict[str, float]:
        from repro.pwl.device import CNFET

        params = self.space.to_parameters(dict(key))
        device = CNFET(params, model=self.model)
        vdd = self.vdd
        vg_grid = np.linspace(0.0, vdd, self.vth_points)
        delta = self.gm_delta
        bias_vg = np.concatenate([vg_grid, [vdd - delta, vdd + delta]])
        ids = np.asarray(device.ids_batch(bias_vg, vdd))
        grid_ids = ids[:self.vth_points]
        out = {
            "ion": float(grid_ids[-1]),
            "ioff": float(grid_ids[0]),
            "gm": float((ids[-1] - ids[-2]) / (2.0 * delta)),
            "vth": _constant_current_vth(vg_grid, grid_ids, self.icrit_a),
        }
        out["ion_ioff_ratio"] = (
            out["ion"] / out["ioff"] if out["ioff"] > 0.0 else math.nan
        )
        return {m: out[m] for m in self.metrics}

    def evaluate(self, samples: Sequence[Mapping]) -> List[Dict[str, float]]:
        """Metrics per sample; distinct quantised devices computed once
        (the memo persists across chunks of the same campaign)."""
        keys = [quantize_sample(s, self.quantize) for s in samples]
        memo = self._memo
        for key in keys:
            if key not in memo:
                memo[key] = self._device_metrics(key)
        return [dict(memo[key]) for key in keys]

    def evaluate_naive(self, samples: Sequence[Mapping],
                       use_fit_cache: bool = False
                       ) -> List[Dict[str, float]]:
        """Reference implementation: per-sample scalar loop, no grouping.

        This is the seed-style baseline the acceptance benchmark
        compares against — each sample builds its own device object
        (which refits the charge curve, as construction always did
        before the fit cache existed) and walks the same bias points
        through scalar ``ids`` calls.  Pass ``use_fit_cache=True`` to
        isolate the batch-vs-scalar evaluation difference instead.
        """
        from repro.pwl.device import CNFET

        out = []
        vdd = self.vdd
        vg_grid = np.linspace(0.0, vdd, self.vth_points)
        for sample in samples:
            params = self.space.to_parameters(sample)
            device = CNFET(params, model=self.model,
                           use_fit_cache=use_fit_cache)
            grid_ids = np.array([device.ids(vg, vdd) for vg in vg_grid])
            row = {
                "ion": float(grid_ids[-1]),
                "ioff": float(grid_ids[0]),
                "gm": device.gm(vdd, vdd, delta=self.gm_delta),
                "vth": _constant_current_vth(vg_grid, grid_ids,
                                             self.icrit_a),
            }
            row["ion_ioff_ratio"] = (
                row["ion"] / row["ioff"] if row["ioff"] > 0.0 else math.nan
            )
            out.append({m: row[m] for m in self.metrics})
        return out


def _constant_current_vth(vg: np.ndarray, ids: np.ndarray,
                          icrit: float) -> float:
    """Gate voltage where IDS crosses ``icrit`` (log-interpolated).

    NaN when the sweep never crosses (device on at VG=0 or never on) —
    those runs show up as yield losses rather than fake numbers.
    """
    ids = np.maximum(np.asarray(ids, dtype=float), 1e-30)
    if ids[0] >= icrit or ids[-1] < icrit:
        return math.nan
    k = int(np.argmax(ids >= icrit))
    y0, y1 = math.log10(ids[k - 1]), math.log10(ids[k])
    x0, x1 = float(vg[k - 1]), float(vg[k])
    if y1 == y0:
        return x1
    return x0 + (math.log10(icrit) - y0) * (x1 - x0) / (y1 - y0)


# ----------------------------------------------------------------------
# Campaign engine
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignConfig:
    """Run-table shape: how many samples, which stream, which chunking."""

    name: str = "campaign"
    n_samples: int = 256
    seed: int = 0
    sampler: str = "mc"
    chunk_size: int = 256

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ParameterError(
                f"n_samples must be >= 1: {self.n_samples}"
            )
        if self.chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1: {self.chunk_size}"
            )
        if self.sampler not in SAMPLERS:
            raise ParameterError(
                f"unknown sampler {self.sampler!r}; expected one of "
                f"{SAMPLERS}"
            )

    def describe(self) -> Dict:
        """JSON-able config fingerprint (campaign manifests)."""
        return {"name": self.name, "n_samples": self.n_samples,
                "seed": self.seed, "sampler": self.sampler,
                "chunk_size": self.chunk_size}


@dataclass
class CampaignResult:
    """All per-run records plus the aggregate table."""

    config: CampaignConfig
    records: List[Dict]
    aggregate: Dict[str, Dict[str, float]]
    resumed_chunks: int = 0
    computed_chunks: int = 0
    run_dir: Optional[str] = None
    #: corrupt/truncated record files moved to ``quarantine/`` and
    #: recomputed during this run
    quarantined: int = 0

    @property
    def metric_names(self) -> List[str]:
        """Aggregated metric names, in evaluator order."""
        return list(self.aggregate)

    def values(self, metric: str) -> np.ndarray:
        """Per-run values of one metric (NaN where a run failed)."""
        return np.array([rec["metrics"].get(metric, math.nan)
                         for rec in self.records], dtype=float)

    def render(self, histograms: bool = False) -> str:
        """ASCII summary table (plus optional per-metric histograms)."""
        headers = ["metric", "n", "mean", "std", "cv", "min", "p5",
                   "p50", "p95", "max"]
        has_yield = any("yield" in s for s in self.aggregate.values())
        if has_yield:
            headers.append("yield")
        rows = []
        for name, s in self.aggregate.items():
            row = [name, s["n"], s["mean"], s["std"], s["cv"], s["min"],
                   s["p5"], s["p50"], s["p95"], s["max"]]
            if has_yield:
                row.append(f"{100 * s['yield']:.1f}%"
                           if "yield" in s else "-")
            rows.append(row)
        title = (f"{self.config.name}: {self.config.n_samples} samples, "
                 f"sampler={self.config.sampler}, seed={self.config.seed}")
        text = ascii_table(headers, rows, title=title)
        if histograms:
            blocks = [text]
            for name in self.aggregate:
                blocks.append(histogram_ascii(
                    self.values(name), title=f"{name} distribution"))
            text = "\n\n".join(blocks)
        return text

    def to_json_dict(self) -> Dict:
        """JSON payload: config, aggregate, per-run records."""
        return {
            "config": self.config.describe(),
            "aggregate": self.aggregate,
            "records": self.records,
            "resumed_chunks": self.resumed_chunks,
            "computed_chunks": self.computed_chunks,
            "run_dir": self.run_dir,
            "quarantined": self.quarantined,
        }


class Campaign:
    """Chunked, resumable execution of *sampler x evaluator*."""

    def __init__(self, config: CampaignConfig, space: ParameterSpace,
                 evaluator, run_dir: Optional[os.PathLike] = None) -> None:
        self.config = config
        self.space = space
        self.evaluator = evaluator
        self.run_dir = Path(run_dir) if run_dir is not None else None

    # -- identity ------------------------------------------------------

    def manifest(self) -> Dict:
        """Config + space + evaluator description (what is run)."""
        return {
            "config": self.config.describe(),
            "space": self.space.describe(),
            "evaluator": self.evaluator.describe(),
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical manifest (resume safety check).

        Delegates to :func:`repro.service.fingerprint
        .manifest_fingerprint` — the same canonicalisation the job
        service uses for cache keys, and byte-identical to the
        historical inline ``sha256(json.dumps(..., sort_keys=True))``,
        so existing run directories stay resumable.
        """
        from repro.service.fingerprint import manifest_fingerprint

        return manifest_fingerprint(self.manifest())

    # -- execution -----------------------------------------------------

    def _chunks(self, samples: List[Dict]) -> List[List[Dict]]:
        size = self.config.chunk_size
        return [samples[i:i + size] for i in range(0, len(samples), size)]

    def run(self, resume: bool = True, progress=None,
            workers: "int | str | None" = 1,
            cancel: Optional[CancelToken] = None) -> CampaignResult:
        """Execute (or finish) the campaign and aggregate the run table.

        ``progress`` is an optional callable ``(done_chunks,
        total_chunks)`` invoked after every chunk.

        ``workers`` shards the *pending* chunks over forked processes
        (``None`` / ``0`` / ``"auto"`` resolve through
        :func:`repro.parallel.resolve_workers`: the ``REPRO_WORKERS``
        environment variable, else every core).  Chunk files are
        written by the parent only, in chunk order, so resumable run
        directories behave identically to the serial path.  The one
        behavioural difference: evaluator memo entries do not flow
        between workers, so cross-chunk sample deduplication happens
        per worker instead of globally — same results, possibly some
        repeated work.

        On resume, corrupt or truncated chunk files are moved to
        ``chunks/quarantine/`` and recomputed (count on
        ``CampaignResult.quarantined``).  A ``cancel`` token is checked
        once per serially evaluated chunk.
        """
        from repro.parallel import fork_map, resolve_workers

        cfg = self.config
        samples = sample_space(self.space, cfg.n_samples, cfg.seed,
                               method=cfg.sampler)
        chunks = self._chunks(samples)
        chunk_dir = None
        resumed = computed = quarantined = 0
        if self.run_dir is not None:
            chunk_dir = self.run_dir / "chunks"
            chunk_dir.mkdir(parents=True, exist_ok=True)
            quarantined += self._check_manifest(resume)

        loaded: Dict[int, List[Dict]] = {}
        for index, chunk in enumerate(chunks):
            path = (chunk_dir / f"chunk_{index:04d}.json"
                    if chunk_dir is not None else None)
            if path is not None and resume and path.exists():
                records = self._load_chunk(path, index, chunk)
                if records is not None:
                    loaded[index] = records
                elif _quarantine(path):
                    quarantined += 1
                    _log.warning(
                        "campaign resume: quarantined corrupt chunk "
                        "file %s; recomputing", path)
        pending = [i for i in range(len(chunks)) if i not in loaded]
        if resolve_workers(workers) > 1 and len(pending) > 1:
            metric_lists = fork_map(
                self.evaluator.evaluate,
                [chunks[i] for i in pending], workers)
        else:
            metric_lists = []
            for i in pending:
                if cancel is not None:
                    cancel.check()
                metric_lists.append(self.evaluator.evaluate(chunks[i]))

        all_records: List[Dict] = []
        done = 0
        computed_metrics = dict(zip(pending, metric_lists))
        for index, chunk in enumerate(chunks):
            if index in loaded:
                records = loaded[index]
                resumed += 1
            else:
                metrics = computed_metrics[index]
                start = index * cfg.chunk_size
                records = [
                    {"index": start + i,
                     "params": _jsonable_sample(chunk[i]),
                     "metrics": metrics[i]}
                    for i in range(len(chunk))
                ]
                computed += 1
                if chunk_dir is not None:
                    _atomic_write_json(
                        chunk_dir / f"chunk_{index:04d}.json",
                        {"chunk": index, "records": records})
            all_records.extend(records)
            done += 1
            if progress is not None:
                progress(done, len(chunks))

        aggregate = aggregate_metrics(
            all_records, getattr(self.evaluator, "spec_limits", None))
        if self.run_dir is not None:
            _atomic_write_json(self.run_dir / "aggregate.json", {
                "fingerprint": self.fingerprint(),
                "aggregate": aggregate,
            })
            self._write_run_table(all_records)
        return CampaignResult(
            config=cfg, records=all_records, aggregate=aggregate,
            resumed_chunks=resumed, computed_chunks=computed,
            run_dir=str(self.run_dir) if self.run_dir else None,
            quarantined=quarantined,
        )

    # -- persistence ---------------------------------------------------

    def _check_manifest(self, resume: bool) -> int:
        """Verify (or write) the manifest; returns the number of files
        quarantined recovering from a corrupt manifest.

        A *mismatched* fingerprint still raises — that is a different
        experiment, not corruption.  An *unreadable* manifest (truncated
        by a crash mid-write) makes every chunk on disk unverifiable, so
        the manifest and all chunk files move to ``quarantine/`` and the
        campaign restarts fresh instead of crashing the resume.
        """
        path = self.run_dir / "manifest.json"
        manifest = {"fingerprint": self.fingerprint(), **self.manifest()}
        if path.exists() and resume:
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                count = int(_quarantine(path))
                chunk_dir = self.run_dir / "chunks"
                for chunk_path in sorted(chunk_dir.glob("chunk_*.json")):
                    count += int(_quarantine(chunk_path))
                _log.warning(
                    "campaign resume: manifest %s unreadable; "
                    "quarantined it and %d chunk file(s), restarting "
                    "fresh", path, count - 1)
                _atomic_write_json(path, manifest)
                return count
            if existing.get("fingerprint") != manifest["fingerprint"]:
                raise CampaignError(
                    f"run directory {self.run_dir} belongs to a different "
                    f"campaign (seed/sampler/space/evaluator changed); "
                    f"use a fresh directory or delete it"
                )
        else:
            _atomic_write_json(path, manifest)
        return 0

    def _load_chunk(self, path: Path, index: int,
                    chunk: List[Dict]) -> Optional[List[Dict]]:
        """Records of a persisted chunk; ``None`` for a corrupt/partial
        file (it is then recomputed and rewritten)."""
        try:
            payload = json.loads(path.read_text())
            records = payload["records"]
        except (OSError, json.JSONDecodeError, KeyError):
            return None
        if payload.get("chunk") != index or len(records) != len(chunk):
            return None
        return records

    def _write_run_table(self, records: List[Dict]) -> None:
        knobs = list(records[0]["params"]) if records else []
        metrics = list(records[0]["metrics"]) if records else []
        lines = [",".join(["run"] + knobs + metrics)]
        for rec in records:
            cells = [str(rec["index"])]
            for name in knobs:
                value = rec["params"][name]
                if isinstance(value, list):
                    cells.append("(" + ";".join(str(v) for v in value) + ")")
                else:
                    cells.append(f"{value:.6g}")
            for name in metrics:
                cells.append(f"{rec['metrics'][name]:.8g}")
            lines.append(",".join(cells))
        tmp = self.run_dir / "run_table.csv.tmp"
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, self.run_dir / "run_table.csv")


def _jsonable_sample(sample: Mapping) -> Dict:
    return {name: (list(v) if isinstance(v, tuple) else v)
            for name, v in sample.items()}


def _quarantine(path: Path) -> bool:
    """Move a corrupt record file into a sibling ``quarantine/``
    directory (atomic rename); False when the file vanished."""
    if not path.exists():
        return False
    qdir = path.parent / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    os.replace(path, qdir / path.name)
    return True


def _atomic_write_json(path: Path, payload: Dict) -> None:
    text = json.dumps(payload, indent=1, sort_keys=False) + "\n"
    # Chaos seam: a FaultPlan can truncate this payload exactly as a
    # crash between write and rename would (docs/robustness.md).
    text = faults.mangle_text("persist.truncate", text)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
