"""Circuit-level Monte-Carlo evaluators.

Device samples become complementary logic cells (the sampled parameters
feed both the n- and the mirrored p-device) and are simulated through
the two-phase MNA engine:

* :class:`InverterVTCEvaluator` — DC transfer curve per sample:
  switching threshold, peak gain and the unity-gain noise margins.
* :class:`RingOscillatorEvaluator` — transient per sample: oscillation
  period, frequency and per-stage delay.

Both evaluators deduplicate samples by quantised device key (a circuit
simulation is ~10^4 times costlier than a device-metric batch lane, so
collapsing near-identical samples matters even more here).

Distinct keys are then evaluated through the **lane-batched circuit
engine** by default (:mod:`repro.circuit.batch_sim`): every distinct
sample becomes a lane of one stacked MNA solve — the ring-oscillator MC
runs chunks of transients in lock-step, the inverter MC runs its VTC
sweeps as stacked DC solves — instead of one Python-level simulation
loop per sample.  Lanes whose lock-step Newton fails are re-run through
the scalar engine automatically, so results match the per-sample path.

With ``workers > 1`` the work shards over forked processes through
:func:`repro.parallel.fork_map`: the batch path ships whole
``BATCH_LANES`` tiles to the workers (tile boundaries unchanged, so
per-lane numerics match the serial path exactly), the
``use_batch=False`` scalar loop ships individual keys.  Fork
inheritance shares the evaluator state copy-on-write — each worker
still builds its own devices behind its own per-process fit cache.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError, ReproError
from repro.variability.campaign import quantize_sample
from repro.variability.params import ParameterSpace

__all__ = ["InverterVTCEvaluator", "RingOscillatorEvaluator"]


class _CircuitEvaluatorBase:
    """Shared dedup + batch/pool plumbing; subclasses implement
    ``_evaluate_key``, ``_evaluate_keys_batch`` and ``_nan_metrics``."""

    #: lanes per lane-batched chunk (bounds the stacked-matrix memory)
    BATCH_LANES = 256

    def __init__(self, space: ParameterSpace, vdd: float, model: str,
                 workers: int,
                 quantize: Optional[Mapping[str, int]],
                 spec_limits: Optional[Mapping[str, Tuple]],
                 use_batch: bool = True,
                 backend: Optional[str] = None) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1: {workers}")
        self.space = space
        self.vdd = float(vdd)
        self.model = model
        self.workers = int(workers)
        self.use_batch = bool(use_batch)
        #: linear-solver backend spec forwarded to every analysis
        #: (None/"auto"/"dense"/"sparse")
        self.backend = backend
        self.quantize = dict(quantize) if quantize is not None else None
        self.spec_limits = dict(spec_limits) if spec_limits else None
        #: metric memo per quantised key, shared across chunks
        self._memo: Dict[Tuple, Dict[str, float]] = {}

    def _family(self, key: Tuple):
        from repro.circuit.logic import LogicFamily
        from repro.pwl.device import CNFET

        params = self.space.to_parameters(dict(key))
        return LogicFamily(
            n_device=CNFET(params, model=self.model, polarity="n"),
            p_device=CNFET(params, model=self.model, polarity="p"),
            vdd=self.vdd,
        )

    def _evaluate_key(self, key: Tuple) -> Dict[str, float]:
        raise NotImplementedError

    def _evaluate_keys_batch(self, keys: Sequence[Tuple]
                             ) -> List[Dict[str, float]]:
        raise NotImplementedError

    def _nan_metrics(self) -> Dict[str, float]:
        raise NotImplementedError

    def _evaluate_key_safe(self, key: Tuple) -> Dict[str, float]:
        try:
            return self._evaluate_key(key)
        except ReproError:
            # A failed run (non-convergent bias point, no oscillation)
            # is a data point — NaN metrics count as yield losses.
            return self._nan_metrics()

    def evaluate(self, samples: Sequence[Mapping]
                 ) -> List[Dict[str, float]]:
        keys = [quantize_sample(s, self.quantize) for s in samples]
        pending = [k for k in dict.fromkeys(keys) if k not in self._memo]
        if self.use_batch and len(pending) > 1:
            tiles = [pending[start:start + self.BATCH_LANES]
                     for start in range(0, len(pending),
                                        self.BATCH_LANES)]
            if self.workers > 1 and len(tiles) > 1:
                # Lane-tile sharding: each forked worker runs whole
                # stacked solves (the tile boundaries are unchanged,
                # so per-lane numerics match the serial path exactly).
                from repro.parallel import fork_map

                tile_results = fork_map(self._evaluate_keys_batch,
                                        tiles, self.workers)
            else:
                tile_results = [self._evaluate_keys_batch(tile)
                                for tile in tiles]
            results = [m for tile in tile_results for m in tile]
        elif self.workers > 1 and len(pending) > 1:
            from repro.parallel import fork_map

            results = fork_map(self._evaluate_key_safe, pending,
                               self.workers)
        else:
            results = [self._evaluate_key_safe(key) for key in pending]
        self._memo.update(zip(pending, results))
        return [dict(self._memo[key]) for key in keys]


class InverterVTCEvaluator(_CircuitEvaluatorBase):
    """Complementary-inverter DC transfer metrics per device sample.

    Metrics: ``vm`` (switching threshold, VOUT = VDD/2 crossing),
    ``gain`` (peak |dVOUT/dVIN|), ``nml``/``nmh`` (noise margins from
    the unity-gain points).
    """

    METRICS = ("vm", "gain", "nml", "nmh")

    def __init__(self, space: ParameterSpace, vdd: float = 0.6,
                 model: str = "model2", points: int = 41,
                 workers: int = 1,
                 quantize: Optional[Mapping[str, int]] = None,
                 spec_limits: Optional[Mapping[str, Tuple]] = None,
                 use_batch: bool = True,
                 backend: Optional[str] = None) -> None:
        super().__init__(space, vdd, model, workers, quantize,
                         spec_limits, use_batch, backend)
        if points < 11:
            raise ParameterError(f"need >= 11 VTC points: {points}")
        self.points = int(points)

    def describe(self) -> Dict:
        """JSON-able evaluator fingerprint (campaign manifests)."""
        return {"kind": "inverter-vtc", "vdd": self.vdd,
                "model": self.model, "points": self.points,
                "quantize": self.quantize,
                "spec_limits": {k: list(v)
                                for k, v in self.spec_limits.items()}
                if self.spec_limits else None}

    def _nan_metrics(self) -> Dict[str, float]:
        return {m: math.nan for m in self.METRICS}

    def _vtc_metrics(self, dataset, vout: str,
                     sweep: np.ndarray) -> Dict[str, float]:
        v_out = dataset.voltage(vout)
        crossings = dataset.crossings(f"v({vout})", self.vdd / 2)
        vm = crossings[0] if crossings else math.nan
        slope = -np.gradient(v_out, sweep)
        gain = float(np.max(slope))
        above = np.where(slope > 1.0)[0]
        if above.size:
            vil, vih = float(sweep[above[0]]), float(sweep[above[-1]])
            voh, vol = float(v_out[above[0]]), float(v_out[above[-1]])
            nmh, nml = voh - vih, vil - vol
        else:
            nmh = nml = math.nan
        return {"vm": vm, "gain": gain, "nml": nml, "nmh": nmh}

    def _evaluate_key(self, key: Tuple) -> Dict[str, float]:
        from repro.circuit import dc_sweep
        from repro.circuit.logic import build_inverter

        family = self._family(key)
        circuit, _vin, vout = build_inverter(family)
        sweep = np.linspace(0.0, self.vdd, self.points)
        dataset = dc_sweep(circuit, "vin_src", sweep,
                           backend=self.backend)
        return self._vtc_metrics(dataset, vout, sweep)

    def _evaluate_keys_batch(self, keys: Sequence[Tuple]
                             ) -> List[Dict[str, float]]:
        """One stacked DC sweep: every distinct sample is a lane."""
        from repro.circuit.batch_sim import batch_dc_sweep
        from repro.circuit.logic import build_inverter

        circuits = []
        vout = "out"
        for key in keys:
            circuit, _vin, vout = build_inverter(self._family(key))
            circuits.append(circuit)
        sweep = np.linspace(0.0, self.vdd, self.points)
        try:
            datasets = batch_dc_sweep(circuits, "vin_src", sweep,
                                      backend=self.backend)
        except ReproError:
            return [self._evaluate_key_safe(key) for key in keys]
        out = []
        for dataset in datasets:
            try:
                out.append(self._vtc_metrics(dataset, vout, sweep))
            except ReproError:
                out.append(self._nan_metrics())
        return out


class RingOscillatorEvaluator(_CircuitEvaluatorBase):
    """Ring-oscillator transient metrics per device sample.

    Metrics: ``period`` [s], ``frequency`` [Hz], ``stage_delay`` [s].
    """

    METRICS = ("period", "frequency", "stage_delay")

    def __init__(self, space: ParameterSpace, vdd: float = 0.6,
                 model: str = "model2", stages: int = 3,
                 tstop: float = 2.5e-10, dt: float = 2e-12,
                 workers: int = 1,
                 quantize: Optional[Mapping[str, int]] = None,
                 spec_limits: Optional[Mapping[str, Tuple]] = None,
                 use_batch: bool = True,
                 backend: Optional[str] = None) -> None:
        super().__init__(space, vdd, model, workers, quantize,
                         spec_limits, use_batch, backend)
        if stages < 3 or stages % 2 == 0:
            raise ParameterError(
                f"a ring oscillator needs an odd stage count >= 3: {stages}"
            )
        if not 0.0 < dt < tstop:
            raise ParameterError(
                f"need 0 < dt < tstop: dt={dt}, tstop={tstop}"
            )
        self.stages = int(stages)
        self.tstop = float(tstop)
        self.dt = float(dt)

    def describe(self) -> Dict:
        """JSON-able evaluator fingerprint (campaign manifests)."""
        return {"kind": "ring-oscillator", "vdd": self.vdd,
                "model": self.model, "stages": self.stages,
                "tstop": self.tstop, "dt": self.dt,
                "quantize": self.quantize,
                "spec_limits": {k: list(v)
                                for k, v in self.spec_limits.items()}
                if self.spec_limits else None}

    def _nan_metrics(self) -> Dict[str, float]:
        return {m: math.nan for m in self.METRICS}

    #: minimum excursion (fraction of VDD) on both sides of VDD/2 for
    #: a crossing interval to count as a real oscillation cycle.  The
    #: BE-damped ring decays toward its metastable point, where the
    #: trace keeps "crossing" VDD/2 at float-noise amplitude (1e-15 V);
    #: this floor sits far above that noise and far below the physical
    #: ring-down amplitudes, so the filtered spacings are identical
    #: between the scalar and lane-batched engines.
    MIN_EXCURSION = 1e-3

    def _evaluate_key(self, key: Tuple) -> Dict[str, float]:
        from repro.circuit.logic import build_ring_oscillator
        from repro.circuit.transient import (
            initial_conditions_from_op,
            transient,
        )

        family = self._family(key)
        circuit, nodes = build_ring_oscillator(family, stages=self.stages)
        x0 = initial_conditions_from_op(
            circuit, {nodes[0]: 0.0, nodes[1]: family.vdd})
        dataset = transient(circuit, tstop=self.tstop, dt=self.dt, x0=x0,
                            method="be", backend=self.backend)
        return self._period_metrics(dataset, nodes[0])

    def _period_metrics(self, dataset, node: str) -> Dict[str, float]:
        """Excursion-validated robust period metrics of one waveform.

        Only rising-crossing intervals whose trace genuinely swings
        through VDD/2 (excursion >= ``MIN_EXCURSION * VDD`` on *both*
        sides) count as oscillation cycles; the median of their
        spacings is the period.  The legacy estimator averaged *every*
        crossing spacing, which mixed real ring-down cycles with
        float-noise crossings around the metastable point — a metric
        so fragile that two runs differing by 1e-16 V could disagree
        by tens of percent.  The validated median reproduces the
        legacy values (the real cycles dominate) while agreeing
        between the scalar and lane-batched engines to ~1e-13
        relative.
        """
        from repro.errors import AnalysisError

        level = self.vdd / 2
        threshold = self.MIN_EXCURSION * self.vdd
        t = np.asarray(dataset.axis)
        v = dataset.voltage(node)
        crossings = dataset.crossings(f"v({node})", level, rising=True)
        spacings = []
        for a, b in zip(crossings[:-1], crossings[1:]):
            seg = v[(t >= a) & (t <= b)]
            if seg.size and (seg - level).max() >= threshold \
                    and (level - seg).max() >= threshold:
                spacings.append(b - a)
        if not spacings:
            raise AnalysisError(
                f"no oscillation cycles with >= "
                f"{self.MIN_EXCURSION:.0e} * VDD excursion around "
                f"VDD/2 on {node!r}"
            )
        period = float(np.median(spacings))
        return {
            "period": period,
            "frequency": 1.0 / period,
            "stage_delay": period / (2 * self.stages),
        }

    def _evaluate_keys_batch(self, keys: Sequence[Tuple]
                             ) -> List[Dict[str, float]]:
        """One lock-step transient: every distinct sample is a lane.

        The stacked DC operating points are kicked off the symmetric
        point with the same per-node overrides as the scalar path, and
        the shared fixed grid equals the scalar grid (the ring has no
        source breakpoints), so per-lane waveforms match the scalar
        engine to Newton noise.
        """
        from repro.circuit.batch_sim import (
            LaneBatch,
            batch_operating_points,
            batch_transient,
        )
        from repro.circuit.logic import build_ring_oscillator

        circuits = []
        nodes = ()
        for key in keys:
            circuit, nodes = build_ring_oscillator(
                self._family(key), stages=self.stages)
            circuits.append(circuit)
        try:
            # One assembler serves both the stacked DC solve and the
            # transient (the stacked device tables are built once).
            batch = LaneBatch(circuits, backend=self.backend)
            x0 = batch_operating_points(circuits, batch=batch)
            template = circuits[0]
            x0[:, template.node_index[nodes[0]]] = 0.0
            x0[:, template.node_index[nodes[1]]] = self.vdd
            result = batch_transient(
                circuits, self.tstop, dt=self.dt, method="be", x0=x0,
                record_currents=False, batch=batch,
            )
        except ReproError:
            return [self._evaluate_key_safe(key) for key in keys]
        out = []
        for lane in range(len(keys)):
            dataset = result.datasets[lane]
            if dataset is None:
                out.append(self._nan_metrics())
                continue
            try:
                out.append(self._period_metrics(dataset, nodes[0]))
            except ReproError:
                out.append(self._nan_metrics())
        return out
