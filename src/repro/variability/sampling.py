"""Seeded Monte-Carlo and Latin-hypercube samplers.

Both samplers draw an ``(n, dims)`` matrix in the unit hypercube from a
``numpy`` PCG64 generator seeded explicitly, then map it through the
space's inverse CDFs — the same seed therefore always yields the same
run table, independent of process, platform or chunking.

Latin-hypercube sampling stratifies each dimension into ``n`` equal
probability bins and places exactly one point per bin (at a uniformly
jittered position), with independent random bin permutations per
dimension.  For the same budget it covers distribution tails far more
evenly than plain Monte Carlo, which matters for yield estimates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ParameterError
from repro.variability.params import ParameterSpace

__all__ = ["monte_carlo", "latin_hypercube", "sample_space", "unit_matrix"]

#: Registered sampler names (CLI / campaign configs reference these).
SAMPLERS = ("mc", "lhs")


def unit_matrix(method: str, n: int, dims: int, seed: int) -> np.ndarray:
    """``(n, dims)`` unit-hypercube draw for the named sampler."""
    if n < 1:
        raise ParameterError(f"need at least one sample: {n}")
    if dims < 1:
        raise ParameterError(f"need at least one dimension: {dims}")
    rng = np.random.Generator(np.random.PCG64(seed))
    if method == "mc":
        u = rng.random((n, dims))
    elif method == "lhs":
        # One point per stratum per dimension, independently permuted.
        u = np.empty((n, dims))
        for j in range(dims):
            strata = (np.arange(n) + rng.random(n)) / n
            u[:, j] = rng.permutation(strata)
    else:
        raise ParameterError(
            f"unknown sampler {method!r}; expected one of {SAMPLERS}"
        )
    # ppf maps are defined on the open interval.
    return np.clip(u, 1e-12, 1.0 - 1e-12)


def sample_space(space: ParameterSpace, n: int, seed: int,
                 method: str = "mc") -> List[Dict]:
    """Draw ``n`` samples from a parameter space (list of knob dicts)."""
    u = unit_matrix(method, n, space.dims, seed)
    return space.materialize(u)


def monte_carlo(space: ParameterSpace, n: int, seed: int) -> List[Dict]:
    """Plain seeded Monte Carlo."""
    return sample_space(space, n, seed, method="mc")


def latin_hypercube(space: ParameterSpace, n: int, seed: int) -> List[Dict]:
    """Seeded Latin-hypercube sampling (one point per stratum and
    dimension)."""
    return sample_space(space, n, seed, method="lhs")
