"""Variability analysis: Monte-Carlo campaigns over CNFET parameters.

The paper's argument is that the piecewise closed-form CNFET is fast
enough for SPICE-class simulation *at scale*; the workload that needs
that speed is statistical — CNT diameter/chirality spread, oxide
variation and temperature sweeps over thousands of device instances and
circuit corners.  This subsystem provides:

``params``
    Parameter distributions over the device knobs (diameter, discrete
    chirality, t_ox, kappa, E_F, temperature) plus TT/FF/SS corner
    presets.
``sampling``
    Seeded Monte-Carlo and Latin-hypercube samplers with deterministic,
    reproducible streams.
``campaign``
    A run-table campaign engine (factors x repetitions, chunked
    execution, per-run records + aggregate table, resumable via an
    on-disk run directory) whose device-metric evaluator goes through
    the existing ``ids_batch``/``solve_many`` fast path and shares
    fitted PWL models between quantised-identical samples.
``circuits``
    Circuit-level Monte Carlo: inverter VTC noise margins and
    ring-oscillator period distributions through the two-phase MNA
    engine, optionally across a ``multiprocessing`` pool.
``stats``
    Percentile / sigma / yield aggregation of metric distributions.
"""

from repro.variability.campaign import (  # noqa: F401
    Campaign,
    CampaignConfig,
    CampaignResult,
    DeviceMetricsEvaluator,
)
from repro.variability.circuits import (  # noqa: F401
    InverterVTCEvaluator,
    RingOscillatorEvaluator,
)
from repro.variability.params import (  # noqa: F401
    CORNERS,
    Choice,
    Distribution,
    Fixed,
    Normal,
    ParameterSpace,
    Uniform,
    chirality_device_space,
    corner_sample,
    default_device_space,
)
from repro.variability.sampling import (  # noqa: F401
    latin_hypercube,
    monte_carlo,
    sample_space,
)
from repro.variability.stats import (  # noqa: F401
    histogram_ascii,
    summarize,
    yield_fraction,
)
