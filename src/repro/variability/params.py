"""Parameter distributions over CNFET device knobs and corner presets.

A :class:`ParameterSpace` is an ordered mapping from knob name (a
:class:`~repro.reference.fettoy.FETToyParameters` field) to a
:class:`Distribution`.  Samplers draw points in the unit hypercube and
map them through each distribution's inverse CDF (:meth:`ppf`), so a
given seed always produces the same run table regardless of which knobs
are varied together.

Process corners follow the usual foundry convention: TT is the nominal
device; FF ("fast") shifts every varied knob ``k`` sigmas in the
direction that *increases* drive current, SS the opposite.  The fast
directions were established empirically on the reference model: Ion
grows with diameter (smaller band gap), thinner oxide, higher kappa,
a Fermi level closer to the band edge, and (mildly) temperature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.physics.bandstructure import Chirality
from repro.reference.fettoy import FETToyParameters

__all__ = [
    "Distribution", "Fixed", "Uniform", "Normal", "Choice",
    "ParameterSpace", "CORNERS", "FAST_DIRECTIONS", "corner_sample",
    "default_device_space", "chirality_device_space",
    "inverse_normal_cdf",
]


# ----------------------------------------------------------------------
# Inverse standard-normal CDF (Acklam's rational approximation,
# |relative error| < 1.15e-9 — dependency-free; scipy is not assumed)
# ----------------------------------------------------------------------

_A = (-3.969683028665376e+01, 2.209460984245205e+02,
      -2.759285104469687e+02, 1.383577518672690e+02,
      -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02,
      -1.556989798598866e+02, 6.680131188771972e+01,
      -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01,
      -2.400758277161838e+00, -2.549732539343734e+00,
      4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01,
      2.445134137142996e+00, 3.754408661907416e+00)


def inverse_normal_cdf(u) -> np.ndarray:
    """Standard-normal quantile function, vectorised over ``u`` in (0, 1)."""
    u = np.asarray(u, dtype=float)
    if np.any((u <= 0.0) | (u >= 1.0)):
        raise ParameterError("inverse_normal_cdf needs u in the open (0, 1)")
    out = np.empty_like(u)
    p_low, p_high = 0.02425, 1.0 - 0.02425

    lo = u < p_low
    hi = u > p_high
    mid = ~(lo | hi)

    if np.any(mid):
        q = u[mid] - 0.5
        r = q * q
        num = ((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r
               + _A[4]) * r + _A[5]
        den = ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r
               + _B[4]) * r + 1.0
        out[mid] = num * q / den
    if np.any(lo):
        q = np.sqrt(-2.0 * np.log(u[lo]))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q
               + _C[4]) * q + _C[5]
        den = (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        out[lo] = num / den
    if np.any(hi):
        q = np.sqrt(-2.0 * np.log(1.0 - u[hi]))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q
               + _C[4]) * q + _C[5]
        den = (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        out[hi] = -num / den
    return out


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------

class Distribution:
    """Maps unit-hypercube coordinates to knob values.

    Subclasses implement :meth:`ppf` (the inverse CDF, vectorised),
    :meth:`nominal` (the TT value) and :meth:`at_sigma` (the value ``k``
    standard deviations from nominal, used by corner presets).
    :meth:`describe` returns a JSON-able fingerprint for run manifests.
    """

    def ppf(self, u: np.ndarray):
        """Inverse CDF: unit-hypercube coordinates to knob values."""
        raise NotImplementedError

    def nominal(self):
        """The typical (TT-corner) knob value."""
        raise NotImplementedError

    def at_sigma(self, k: float):
        """Knob value ``k`` standard deviations from nominal."""
        raise NotImplementedError

    def describe(self) -> Dict:
        """JSON-able fingerprint for campaign manifests."""
        raise NotImplementedError


@dataclass(frozen=True)
class Fixed(Distribution):
    """A knob held constant (still recorded in the run table)."""

    value: float

    def ppf(self, u):
        return np.full(np.shape(u), self.value, dtype=float)

    def nominal(self):
        return self.value

    def at_sigma(self, k: float):
        return self.value

    def describe(self):
        return {"kind": "fixed", "value": self.value}


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self):
        if not self.low < self.high:
            raise ParameterError(
                f"Uniform needs low < high: [{self.low}, {self.high}]"
            )

    def ppf(self, u):
        return self.low + np.asarray(u, dtype=float) * (self.high - self.low)

    def nominal(self):
        return 0.5 * (self.low + self.high)

    def at_sigma(self, k: float):
        sigma = (self.high - self.low) / math.sqrt(12.0)
        return float(np.clip(self.nominal() + k * sigma, self.low, self.high))

    def describe(self):
        return {"kind": "uniform", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian with optional truncation bounds (values are clipped;
    for the few-sigma bounds used here the distortion is negligible and
    the sampler stays a pure ppf map, which LHS stratification needs)."""

    mean: float
    sigma: float
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self):
        if self.sigma < 0.0:
            raise ParameterError(f"Normal needs sigma >= 0: {self.sigma}")
        if (self.low is not None and self.high is not None
                and not self.low < self.high):
            raise ParameterError(
                f"Normal needs low < high: [{self.low}, {self.high}]"
            )

    def ppf(self, u):
        if self.sigma == 0.0:
            return np.full(np.shape(u), self.mean, dtype=float)
        x = self.mean + self.sigma * inverse_normal_cdf(u)
        if self.low is not None or self.high is not None:
            x = np.clip(x, self.low, self.high)
        return x

    def nominal(self):
        return self.mean

    def at_sigma(self, k: float):
        x = self.mean + k * self.sigma
        if self.low is not None or self.high is not None:
            x = float(np.clip(x, self.low, self.high))
        return float(x)

    def describe(self):
        return {"kind": "normal", "mean": self.mean, "sigma": self.sigma,
                "low": self.low, "high": self.high}


@dataclass(frozen=True)
class Choice(Distribution):
    """Discrete distribution over explicit values (e.g. chiralities).

    ``values`` should be ordered along the knob's "fast" direction so
    corner presets can step through them: :meth:`at_sigma` moves
    ``round(k)`` positions from the nominal (highest-weight) entry.
    """

    values: Tuple
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self):
        if len(self.values) == 0:
            raise ParameterError("Choice needs at least one value")
        if self.weights is not None:
            if len(self.weights) != len(self.values):
                raise ParameterError(
                    f"{len(self.values)} values but "
                    f"{len(self.weights)} weights"
                )
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ParameterError(
                    f"weights must be non-negative and sum > 0: "
                    f"{self.weights}"
                )

    def _cumulative(self) -> np.ndarray:
        if self.weights is None:
            w = np.full(len(self.values), 1.0 / len(self.values))
        else:
            w = np.asarray(self.weights, dtype=float)
            w = w / w.sum()
        return np.cumsum(w)

    def ppf(self, u):
        idx = np.searchsorted(self._cumulative(),
                              np.asarray(u, dtype=float), side="right")
        idx = np.clip(idx, 0, len(self.values) - 1)
        flat = [self.values[i] for i in np.ravel(idx)]
        if np.ndim(idx) == 0:
            return flat[0]
        # Tuples as elements: fill an object array explicitly so numpy
        # doesn't try to broadcast them into a 2-D array.
        out = np.empty(np.shape(idx), dtype=object)
        out_flat = out.reshape(-1)
        for i, v in enumerate(flat):
            out_flat[i] = v
        return out

    def _nominal_index(self) -> int:
        if self.weights is None:
            return len(self.values) // 2
        return int(np.argmax(self.weights))

    def nominal(self):
        return self.values[self._nominal_index()]

    def at_sigma(self, k: float):
        idx = self._nominal_index() + int(round(k))
        return self.values[int(np.clip(idx, 0, len(self.values) - 1))]

    def describe(self):
        return {"kind": "choice",
                "values": [list(v) if isinstance(v, tuple) else v
                           for v in self.values],
                "weights": list(self.weights) if self.weights else None}


# ----------------------------------------------------------------------
# Parameter space
# ----------------------------------------------------------------------

#: Knobs a space may vary, in canonical order.
KNOWN_KNOBS = ("diameter_nm", "chirality", "tox_nm", "kappa",
               "fermi_level_ev", "temperature_k", "transmission")

#: Sign of each knob's effect on drive current (used by FF/SS corners).
FAST_DIRECTIONS: Dict[str, float] = {
    "diameter_nm": +1.0,
    "chirality": +1.0,        # Choice values ordered by diameter
    "tox_nm": -1.0,
    "kappa": +1.0,
    "fermi_level_ev": +1.0,   # toward the band edge (less negative)
    "temperature_k": +1.0,
    "transmission": +1.0,
}

#: Corner name -> sigma multiplier applied along the fast direction.
CORNERS: Dict[str, float] = {"TT": 0.0, "FF": +3.0, "SS": -3.0}


@dataclass(frozen=True)
class ParameterSpace:
    """Ordered knob -> distribution mapping over device parameters."""

    distributions: Tuple[Tuple[str, Distribution], ...]
    base: FETToyParameters = field(default_factory=FETToyParameters)

    @classmethod
    def from_dict(cls, dists: Mapping[str, Distribution],
                  base: Optional[FETToyParameters] = None
                  ) -> "ParameterSpace":
        for name in dists:
            if name not in KNOWN_KNOBS:
                raise ParameterError(
                    f"unknown device knob {name!r}; expected one of "
                    f"{KNOWN_KNOBS}"
                )
        ordered = tuple((n, dists[n]) for n in KNOWN_KNOBS if n in dists)
        return cls(ordered, base or FETToyParameters())

    @property
    def names(self) -> Tuple[str, ...]:
        """Varied knob names, in declaration order."""
        return tuple(n for n, _ in self.distributions)

    @property
    def dims(self) -> int:
        """Number of varied knobs (unit-hypercube dimensions)."""
        return len(self.distributions)

    def materialize(self, unit: np.ndarray) -> List[Dict]:
        """Map an ``(n, dims)`` unit-hypercube matrix to sample dicts."""
        unit = np.asarray(unit, dtype=float)
        if unit.ndim != 2 or unit.shape[1] != self.dims:
            raise ParameterError(
                f"unit matrix shape {unit.shape} != (n, {self.dims})"
            )
        columns = [dist.ppf(unit[:, j])
                   for j, (_, dist) in enumerate(self.distributions)]
        out = []
        for i in range(unit.shape[0]):
            sample = {}
            for j, (name, _) in enumerate(self.distributions):
                v = columns[j][i]
                sample[name] = v if isinstance(v, tuple) else float(v)
            out.append(sample)
        return out

    def nominal_sample(self) -> Dict:
        """The TT-corner sample (every knob at nominal)."""
        return {name: dist.nominal() for name, dist in self.distributions}

    def to_parameters(self, sample: Mapping) -> FETToyParameters:
        """Build :class:`FETToyParameters` for one sample.

        A sampled ``chirality`` (n, m) tuple overrides ``diameter_nm``
        (matching :meth:`FETToyParameters.resolve_chirality`).
        """
        updates = {}
        for name, value in sample.items():
            if name == "chirality":
                updates["chirality"] = tuple(int(x) for x in value)
            else:
                updates[name] = float(value)
        return self.base.with_updates(**updates)

    def describe(self) -> Dict:
        """JSON-able fingerprint (order matters — it is part of the
        run-table identity recorded in campaign manifests)."""
        return {
            "knobs": [{"name": n, **d.describe()}
                      for n, d in self.distributions],
            "base": {
                "diameter_nm": self.base.diameter_nm,
                "tox_nm": self.base.tox_nm,
                "kappa": self.base.kappa,
                "temperature_k": self.base.temperature_k,
                "fermi_level_ev": self.base.fermi_level_ev,
                "alpha_g": self.base.alpha_g,
                "alpha_d": self.base.alpha_d,
                "gate_geometry": self.base.gate_geometry,
                "n_subbands": self.base.n_subbands,
                "transmission": self.base.transmission,
                "chirality": list(self.base.chirality)
                if self.base.chirality else None,
            },
        }


def corner_sample(space: ParameterSpace, corner: str) -> Dict:
    """TT/FF/SS sample: every knob at ``CORNERS[corner]`` sigmas along
    its fast direction."""
    try:
        k = CORNERS[corner.upper()]
    except KeyError:
        raise ParameterError(
            f"unknown corner {corner!r}; expected one of {sorted(CORNERS)}"
        ) from None
    return {
        name: dist.at_sigma(k * FAST_DIRECTIONS.get(name, 1.0))
        for name, dist in space.distributions
    }


# ----------------------------------------------------------------------
# Stock spaces
# ----------------------------------------------------------------------

def default_device_space(sigma_scale: float = 1.0,
                         base: Optional[FETToyParameters] = None
                         ) -> ParameterSpace:
    """Continuous-diameter variability around the paper's stock device.

    Spreads follow the usual CNT-process assumptions: ~6% diameter
    sigma (CVD growth spread), ~5% oxide-thickness sigma, 10 meV Fermi
    level sigma (doping/contact variation); kappa and temperature stay
    fixed.  ``sigma_scale`` widens or narrows everything at once.
    """
    s = float(sigma_scale)
    if s < 0.0:
        raise ParameterError(f"sigma_scale must be >= 0: {sigma_scale}")
    return ParameterSpace.from_dict({
        "diameter_nm": Normal(1.0, 0.06 * s, low=0.6, high=2.0),
        "tox_nm": Normal(1.5, 0.075 * s, low=0.8, high=3.0),
        "kappa": Fixed(3.9),
        "fermi_level_ev": Normal(-0.32, 0.010 * s, low=-0.5, high=-0.1),
        "temperature_k": Fixed(300.0),
    }, base=base)


#: Semiconducting zigzag tubes bracketing the stock (13, 0) device,
#: ordered by diameter (the corner-preset fast direction).
STOCK_CHIRALITIES = ((10, 0), (11, 0), (13, 0), (14, 0), (16, 0), (17, 0))


def chirality_device_space(sigma_scale: float = 1.0,
                           base: Optional[FETToyParameters] = None
                           ) -> ParameterSpace:
    """Discrete-chirality variability: the tube is drawn from the
    semiconducting zigzag family around (13, 0), weighted toward the
    nominal tube, alongside the continuous oxide/Fermi-level knobs."""
    s = float(sigma_scale)
    if s < 0.0:
        raise ParameterError(f"sigma_scale must be >= 0: {sigma_scale}")
    return ParameterSpace.from_dict({
        "chirality": Choice(STOCK_CHIRALITIES,
                            weights=(0.05, 0.15, 0.40, 0.20, 0.12, 0.08)),
        "tox_nm": Normal(1.5, 0.075 * s, low=0.8, high=3.0),
        "kappa": Fixed(3.9),
        "fermi_level_ev": Normal(-0.32, 0.010 * s, low=-0.5, high=-0.1),
        "temperature_k": Fixed(300.0),
    }, base=base)


def resolve_chirality_label(sample: Mapping) -> str:
    """Human-readable tube label of a sample (for run-table rendering)."""
    if "chirality" in sample:
        n, m = sample["chirality"]
        return f"({int(n)},{int(m)})"
    if "diameter_nm" in sample:
        ch = Chirality.from_diameter(float(sample["diameter_nm"]))
        return f"({ch.n},{ch.m})"
    return "(13,0)"
