"""Physical substrate for the CNFET models.

Subpackages
-----------
``bandstructure``
    Chirality, diameter, band gap and subband minima of carbon nanotubes
    (exact zone-folded tight binding for zigzag tubes, standard
    semiconducting-pattern approximation otherwise).
``dos``
    One-dimensional density of states with van Hove singularities.
``fermi``
    Fermi-Dirac occupation and Fermi-Dirac integrals.
``charge``
    Non-equilibrium mobile charge integrals (NS, ND, N0) and the
    theoretical ``QS(VSC)`` / ``QD(VSC)`` curves the paper approximates.
``capacitance``
    Gate-stack electrostatics (coaxial and back-gate) and terminal
    capacitance partitioning.
``scattering``
    Mean-free-path transmission scaling, the paper's future-work hook
    for non-ballistic transport.
"""

from repro.physics.bandstructure import Chirality, NanotubeBands
from repro.physics.capacitance import (
    TerminalCapacitances,
    backgate_capacitance,
    coaxial_gate_capacitance,
)
from repro.physics.charge import ChargeModel
from repro.physics.dos import DensityOfStates
from repro.physics.fermi import fermi_dirac, fermi_dirac_integral_0

__all__ = [
    "Chirality",
    "NanotubeBands",
    "DensityOfStates",
    "ChargeModel",
    "TerminalCapacitances",
    "coaxial_gate_capacitance",
    "backgate_capacitance",
    "fermi_dirac",
    "fermi_dirac_integral_0",
]
