"""One-dimensional density of states of a carbon nanotube.

Each subband with minimum ``delta`` (eV from mid-gap) contributes, per
unit tube length and per eV,

``D_sub(E) = D0 * |E| / sqrt(E^2 - delta^2)``  for ``|E| > delta``

with the universal prefactor ``D0 = 8 / (3 pi a_cc V_pp_pi)`` that
already counts spin and the K/K' valley degeneracy.  The ``E^{-1/2}``
van Hove singularity at the band edge is integrable; the charge
integrals remove it analytically with the substitution ``E = t^2``
(see :mod:`repro.physics.charge`).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.constants import CC_BOND_LENGTH, HOPPING_ENERGY_EV
from repro.errors import ParameterError

ArrayLike = Union[float, np.ndarray]


def dos_prefactor(hopping_ev: float = HOPPING_ENERGY_EV) -> float:
    """Universal CNT DOS prefactor ``D0 = 8/(3 pi a_cc t)`` [1/(eV m)].

    Equals the constant density of states of a metallic tube
    (about 2.0e9 states per eV per metre for ``t = 3 eV``).
    """
    if hopping_ev <= 0.0:
        raise ParameterError(f"hopping energy must be > 0: {hopping_ev!r}")
    return 8.0 / (3.0 * np.pi * CC_BOND_LENGTH * hopping_ev)


class DensityOfStates:
    """Multi-subband CNT density of states.

    Parameters
    ----------
    subband_minima_ev:
        Ascending conduction-band minima (eV from mid-gap).  A value of
        0 denotes the linear band of a metallic tube, which contributes
        the constant ``D0``.
    hopping_ev:
        Tight-binding hopping energy; fixes the prefactor.
    """

    def __init__(
        self,
        subband_minima_ev: Sequence[float],
        hopping_ev: float = HOPPING_ENERGY_EV,
    ) -> None:
        minima = [float(d) for d in subband_minima_ev]
        if not minima:
            raise ParameterError("at least one subband required")
        if any(d < 0.0 for d in minima):
            raise ParameterError(f"subband minima must be >= 0: {minima}")
        if sorted(minima) != minima:
            raise ParameterError(f"subband minima must ascend: {minima}")
        self.subband_minima_ev = tuple(minima)
        self.prefactor = dos_prefactor(hopping_ev)

    def conduction(self, energy_ev: ArrayLike) -> ArrayLike:
        """Total conduction-band DOS at absolute energy ``E`` (eV from
        mid-gap), per eV per metre.  Zero below the first edge."""
        e = np.asarray(energy_ev, dtype=float)
        total = np.zeros_like(e)
        for delta in self.subband_minima_ev:
            total += self._single(e, delta)
        if np.isscalar(energy_ev):
            return float(total)
        return total

    def _single(self, e: np.ndarray, delta: float) -> np.ndarray:
        if delta == 0.0:
            return np.full_like(e, self.prefactor)
        above = e > delta
        out = np.zeros_like(e)
        ee = e[above]
        out[above] = self.prefactor * ee / np.sqrt(ee * ee - delta * delta)
        return out

    def relative_to_edge(self, energy_rel_ev: ArrayLike,
                         delta: float) -> ArrayLike:
        """DOS of one subband expressed against energy measured *from the
        subband edge* (``E_rel >= 0``):

        ``D(E_rel) = D0 (E_rel + delta)/sqrt(E_rel (E_rel + 2 delta))``.

        Used by the charge integrals which work in band-edge-referenced
        energies.
        """
        e = np.asarray(energy_rel_ev, dtype=float)
        if delta < 0.0:
            raise ParameterError(f"delta must be >= 0: {delta!r}")
        if delta == 0.0:
            out = np.full_like(e, self.prefactor)
        else:
            out = np.zeros_like(e)
            pos = e > 0.0
            ee = e[pos]
            out[pos] = (
                self.prefactor * (ee + delta) / np.sqrt(ee * (ee + 2.0 * delta))
            )
        out = np.where(e < 0.0, 0.0, out)
        if np.isscalar(energy_rel_ev):
            return float(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DensityOfStates(minima={self.subband_minima_ev}, "
            f"D0={self.prefactor:.4g}/eV/m)"
        )
