"""Non-equilibrium mobile charge in a ballistic CNT.

This module evaluates the theoretical state-density integrals of the
top-of-the-barrier model (eqs. (2)-(4) of the paper):

``NS = 1/2 Int D(E) f(E - U_SF) dE``      (+k states, filled by source)
``ND = 1/2 Int D(E) f(E - U_DF) dE``      (-k states, filled by drain)
``N0 = Int D(E) f(E - EF) dE``            (equilibrium)

with ``U_SF = EF - q VSC`` and ``U_DF = EF - q VSC - q VDS``.  Energies
are in eV, measured from the equilibrium conduction-band edge of the
first subband; densities are per metre of tube.

The van Hove singularity ``1/sqrt(E)`` at each subband edge is removed
exactly with the substitution ``E = t**2``, after which fixed-order
Gauss-Legendre quadrature converges spectrally.  All entry points are
vectorised over the energy/bias argument.

Sign conventions (see DESIGN.md §2): the mobile charge magnitudes

``QS(VSC) = q (NS - N0/2)``,  ``QD(VSC) = q (ND - N0/2)``

are positive for negative ``VSC`` (band pulled down, states filling) and
decrease monotonically with ``VSC``; ``QS(0) = 0`` identically because
``NS(U_SF = EF) = N0 / 2``.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.constants import (
    ELEMENTARY_CHARGE,
    HOPPING_ENERGY_EV,
    thermal_voltage_ev,
)
from repro.errors import ParameterError
from repro.physics.dos import dos_prefactor

ArrayLike = Union[float, np.ndarray]


class ChargeModel:
    """Mobile-charge integrals for a fixed device (subbands, T, EF).

    Parameters
    ----------
    subband_minima_ev:
        Ascending conduction-subband minima, eV from mid-gap (see
        :class:`repro.physics.bandstructure.NanotubeBands`).  The first
        entry defines the energy reference: all bias-level energies are
        measured from that edge.
    temperature_k:
        Lattice/contact temperature.
    fermi_level_ev:
        Source Fermi level relative to the first conduction-band edge
        (FETToy convention; typically negative, e.g. -0.32 eV).
    hopping_ev:
        Tight-binding hopping energy (fixes the DOS prefactor).
    nodes:
        Gauss-Legendre order per subband.  200 gives ~1e-12 relative
        accuracy; lower values trade accuracy for speed.
    tail_kt:
        Upper integration limit in units of kT above the occupied window;
        40 kT truncates the Fermi tail below 4e-18.
    """

    def __init__(
        self,
        subband_minima_ev: Sequence[float],
        temperature_k: float,
        fermi_level_ev: float,
        hopping_ev: float = HOPPING_ENERGY_EV,
        nodes: int = 200,
        tail_kt: float = 40.0,
    ) -> None:
        minima = [float(d) for d in subband_minima_ev]
        if not minima:
            raise ParameterError("at least one subband required")
        if sorted(minima) != minima or minima[0] < 0.0:
            raise ParameterError(
                f"subband minima must be ascending and >= 0: {minima}"
            )
        if nodes < 16:
            raise ParameterError(f"need >= 16 quadrature nodes: {nodes}")
        if tail_kt < 10.0:
            raise ParameterError(f"tail must cover >= 10 kT: {tail_kt}")
        self.subband_minima_ev = tuple(minima)
        self.temperature_k = float(temperature_k)
        self.kt_ev = thermal_voltage_ev(temperature_k)
        self.fermi_level_ev = float(fermi_level_ev)
        self.prefactor = dos_prefactor(hopping_ev)
        self.nodes = int(nodes)
        self.tail_kt = float(tail_kt)
        x, w = np.polynomial.legendre.leggauss(self.nodes)
        self._gl_x = x
        self._gl_w = w
        #: subband edges relative to the first edge (>= 0)
        self._offsets = tuple(d - minima[0] for d in minima)
        #: subband half-gaps (delta values entering the DOS shape)
        self._deltas = tuple(minima)
        self._n_equilibrium = None  # lazy cache

    # ------------------------------------------------------------------
    # Core integrals
    # ------------------------------------------------------------------

    def half_density(self, u_ev: ArrayLike) -> ArrayLike:
        """``(1/2) Int D(E) f(E - u) dE`` [states/m].

        ``u`` is an energy in eV from the first conduction-band edge;
        vectorised over ``u``.
        """
        return self._integrate(u_ev, derivative=False)

    def half_density_derivative(self, u_ev: ArrayLike) -> ArrayLike:
        """``d(half_density)/du`` [states/(m eV)]; always >= 0.

        Filling increases as the Fermi window rises.  Feeds the Newton
        iteration of the reference solver and the quantum capacitance.
        """
        return self._integrate(u_ev, derivative=True)

    def _integrate(self, u_ev: ArrayLike, derivative: bool) -> ArrayLike:
        u = np.atleast_1d(np.asarray(u_ev, dtype=float))
        total = np.zeros_like(u)
        for delta, offset in zip(self._deltas, self._offsets):
            total += self._subband_integral(u - offset, delta, derivative)
        total *= 0.5
        if np.isscalar(u_ev):
            return float(total[0])
        return total.reshape(np.shape(u_ev))

    def _subband_integral(self, u: np.ndarray, delta: float,
                          derivative: bool) -> np.ndarray:
        """One subband, singularity removed via ``E = t**2``.

        Returns ``Int_0^inf D_sub(E) f(E - u) dE`` (or its u-derivative)
        where ``D_sub(E) = D0 (E + delta)/sqrt(E (E + 2 delta))`` and the
        substituted integrand ``2 D0 (t^2+delta)/sqrt(t^2+2 delta)`` is
        smooth at ``t = 0``.
        """
        kt = self.kt_ev
        t_max = np.sqrt(np.maximum(u, 0.0) + self.tail_kt * kt)
        half = 0.5 * t_max[:, None]
        t = half * (self._gl_x[None, :] + 1.0)
        t2 = t * t
        if delta == 0.0:
            dos_term = 2.0 * self.prefactor * np.ones_like(t)
        else:
            dos_term = (
                2.0 * self.prefactor * (t2 + delta)
                / np.sqrt(t2 + 2.0 * delta)
            )
        x = (t2 - u[:, None]) / kt
        if derivative:
            # d f(E - u) / du = -f'(x)/kT = f(x)(1-f(x))/kT  (positive)
            occ = _fermi(x)
            weight = occ * (1.0 - occ) / kt
        else:
            weight = _fermi(x)
        return np.sum(dos_term * weight * self._gl_w[None, :], axis=1) \
            * half[:, 0]

    # ------------------------------------------------------------------
    # Bias-level quantities (paper's NS, ND, N0, QS, QD)
    # ------------------------------------------------------------------

    def n_source(self, vsc: ArrayLike) -> ArrayLike:
        """``NS(VSC)`` — +k state density filled by the source [1/m]."""
        return self.half_density(self.fermi_level_ev - np.asarray(vsc)
                                 if not np.isscalar(vsc)
                                 else self.fermi_level_ev - vsc)

    def n_drain(self, vsc: ArrayLike, vds: float) -> ArrayLike:
        """``ND(VSC; VDS)`` — -k state density filled by the drain [1/m]."""
        u = self.fermi_level_ev - np.asarray(vsc, dtype=float) - vds
        out = self.half_density(u)
        if np.isscalar(vsc):
            return float(out)
        return out

    def n_equilibrium(self) -> float:
        """``N0`` — equilibrium density at VSC = VDS = 0 [1/m].

        Exactly ``2 * NS(VSC = 0)``; cached.
        """
        if self._n_equilibrium is None:
            self._n_equilibrium = 2.0 * float(
                self.half_density(self.fermi_level_ev)
            )
        return self._n_equilibrium

    def qs(self, vsc: ArrayLike) -> ArrayLike:
        """Source-side mobile charge ``QS(VSC) = q (NS - N0/2)`` [C/m]."""
        n0_half = 0.5 * self.n_equilibrium()
        out = ELEMENTARY_CHARGE * (
            np.asarray(self.n_source(vsc), dtype=float) - n0_half
        )
        if np.isscalar(vsc):
            return float(out)
        return out

    def qd(self, vsc: ArrayLike, vds: float) -> ArrayLike:
        """Drain-side mobile charge ``QD(VSC; VDS) = QS(VSC + VDS)`` [C/m]."""
        n0_half = 0.5 * self.n_equilibrium()
        out = ELEMENTARY_CHARGE * (
            np.asarray(self.n_drain(vsc, vds), dtype=float) - n0_half
        )
        if np.isscalar(vsc):
            return float(out)
        return out

    def dqs_dvsc(self, vsc: ArrayLike) -> ArrayLike:
        """``dQS/dVSC`` [C/(V m)]; always <= 0 (negative quantum
        capacitance feedback)."""
        u = self.fermi_level_ev - np.asarray(vsc, dtype=float)
        out = -ELEMENTARY_CHARGE * np.asarray(
            self.half_density_derivative(u), dtype=float
        )
        if np.isscalar(vsc):
            return float(out)
        return out

    def delta_n(self, vsc: ArrayLike, vds: float) -> ArrayLike:
        """Excess carrier density ``NS + ND - N0`` [1/m] (eq. (1))."""
        ns = np.asarray(self.n_source(vsc), dtype=float)
        nd = np.asarray(self.n_drain(vsc, vds), dtype=float)
        out = ns + nd - self.n_equilibrium()
        if np.isscalar(vsc):
            return float(out)
        return out

    def quantum_capacitance(self, vsc: ArrayLike, vds: float) -> ArrayLike:
        """``CQ = -d(QS+QD)/dVSC`` [F/m], the small-signal quantum
        capacitance seen at the inner node."""
        u_s = self.fermi_level_ev - np.asarray(vsc, dtype=float)
        u_d = u_s - vds
        out = ELEMENTARY_CHARGE * (
            np.asarray(self.half_density_derivative(u_s), dtype=float)
            + np.asarray(self.half_density_derivative(u_d), dtype=float)
        )
        if np.isscalar(vsc):
            return float(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChargeModel(T={self.temperature_k} K, "
            f"EF={self.fermi_level_ev} eV, "
            f"subbands={self.subband_minima_ev})"
        )


def _fermi(x: np.ndarray) -> np.ndarray:
    """Overflow-free Fermi occupation for internal ndarray use."""
    out = np.empty_like(x)
    pos = x >= 0.0
    e = np.exp(-x[pos])
    out[pos] = e / (1.0 + e)
    out[~pos] = 1.0 / (1.0 + np.exp(x[~pos]))
    return out
