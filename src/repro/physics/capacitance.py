"""Gate-stack electrostatics.

All capacitances are per unit tube length (F/m), matching the
per-unit-length charge densities of :mod:`repro.physics.charge`.

Two gate geometries cover the paper's devices:

* **coaxial** (wrap-around gate, FETToy's default geometry):
  ``C_ins = 2 pi kappa eps0 / ln((2 t_ox + d) / d)``
* **back gate** (cylinder over a conducting plane, the Javey-2005
  experimental device): ``C_ins = 2 pi kappa eps0 / acosh((t_ox + r)/r)``

Terminal control is parametrised FETToy-style by ``alpha_G = CG/CSum``
and ``alpha_D = CD/CSum`` with the gate capacitance equal to the
insulator capacitance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import VACUUM_PERMITTIVITY
from repro.errors import ParameterError


def coaxial_gate_capacitance(diameter_nm: float, tox_nm: float,
                             kappa: float = 3.9) -> float:
    """Insulator capacitance of a coaxial gate [F/m]."""
    _check_geometry(diameter_nm, tox_nm, kappa)
    d = diameter_nm * 1e-9
    tox = tox_nm * 1e-9
    return (
        2.0 * math.pi * kappa * VACUUM_PERMITTIVITY
        / math.log((2.0 * tox + d) / d)
    )


def backgate_capacitance(diameter_nm: float, tox_nm: float,
                         kappa: float = 3.9) -> float:
    """Insulator capacitance of a cylinder over a ground plane [F/m].

    ``t_ox`` is the insulator thickness between the plane and the bottom
    of the tube; the exact image-charge solution uses
    ``acosh((t_ox + r)/r)`` with tube radius ``r``.
    """
    _check_geometry(diameter_nm, tox_nm, kappa)
    r = diameter_nm * 1e-9 / 2.0
    tox = tox_nm * 1e-9
    return (
        2.0 * math.pi * kappa * VACUUM_PERMITTIVITY
        / math.acosh((tox + r) / r)
    )


def _check_geometry(diameter_nm: float, tox_nm: float, kappa: float) -> None:
    if diameter_nm <= 0.0:
        raise ParameterError(f"diameter must be > 0: {diameter_nm!r} nm")
    if tox_nm <= 0.0:
        raise ParameterError(f"oxide thickness must be > 0: {tox_nm!r} nm")
    if kappa <= 0.0:
        raise ParameterError(f"dielectric constant must be > 0: {kappa!r}")


@dataclass(frozen=True)
class TerminalCapacitances:
    """Gate/drain/source capacitances of the top-of-the-barrier model.

    Attributes are per unit length (F/m).  ``cg + cd + cs`` is the total
    ``CSum`` entering the self-consistent-voltage equation; the
    dimensionless ratios ``alpha_g``, ``alpha_d`` quantify gate and drain
    control of the barrier (FETToy's ``alphag``/``alphad``).
    """

    cg: float
    cd: float
    cs: float

    def __post_init__(self) -> None:
        for name, value in (("cg", self.cg), ("cd", self.cd),
                            ("cs", self.cs)):
            if value < 0.0:
                raise ParameterError(f"{name} must be >= 0: {value!r}")
        if self.cg + self.cd + self.cs <= 0.0:
            raise ParameterError("total terminal capacitance must be > 0")

    @property
    def csum(self) -> float:
        """Total terminal capacitance ``CSum = CG + CD + CS`` [F/m]."""
        return self.cg + self.cd + self.cs

    @property
    def alpha_g(self) -> float:
        return self.cg / self.csum

    @property
    def alpha_d(self) -> float:
        return self.cd / self.csum

    @property
    def alpha_s(self) -> float:
        return self.cs / self.csum

    def terminal_charge(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """``Qt = VG CG + VD CD + VS CS`` [C/m] (eq. (8) of the paper)."""
        return vg * self.cg + vd * self.cd + vs * self.cs

    @classmethod
    def from_alphas(cls, c_ins: float, alpha_g: float = 0.88,
                    alpha_d: float = 0.035) -> "TerminalCapacitances":
        """FETToy-style construction.

        The gate capacitance equals the insulator capacitance ``c_ins``
        and ``alpha_g = CG / CSum`` fixes the total; ``alpha_d`` then
        fixes the drain share and the source takes the remainder.
        FETToy's defaults are ``alpha_g = 0.88``, ``alpha_d = 0.035``.
        """
        if c_ins <= 0.0:
            raise ParameterError(f"c_ins must be > 0: {c_ins!r}")
        if not 0.0 < alpha_g <= 1.0:
            raise ParameterError(f"alpha_g must be in (0, 1]: {alpha_g!r}")
        if not 0.0 <= alpha_d < 1.0:
            raise ParameterError(f"alpha_d must be in [0, 1): {alpha_d!r}")
        if alpha_g + alpha_d > 1.0:
            raise ParameterError(
                f"alpha_g + alpha_d must be <= 1: {alpha_g + alpha_d!r}"
            )
        csum = c_ins / alpha_g
        cd = alpha_d * csum
        cs = csum - c_ins - cd
        return cls(cg=c_ins, cd=cd, cs=cs)

    @classmethod
    def coaxial(cls, diameter_nm: float, tox_nm: float, kappa: float = 3.9,
                alpha_g: float = 0.88,
                alpha_d: float = 0.035) -> "TerminalCapacitances":
        """Coaxial-gate device with FETToy terminal partitioning."""
        return cls.from_alphas(
            coaxial_gate_capacitance(diameter_nm, tox_nm, kappa),
            alpha_g, alpha_d,
        )

    @classmethod
    def backgate(cls, diameter_nm: float, tox_nm: float, kappa: float = 3.9,
                 alpha_g: float = 0.88,
                 alpha_d: float = 0.035) -> "TerminalCapacitances":
        """Back-gated device (the Javey-2005 experimental geometry)."""
        return cls.from_alphas(
            backgate_capacitance(diameter_nm, tox_nm, kappa),
            alpha_g, alpha_d,
        )
