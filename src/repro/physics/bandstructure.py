"""Carbon-nanotube band structure.

A single-walled nanotube is indexed by its chiral vector ``(n, m)``.
Zone folding of the graphene tight-binding dispersion gives, for each
allowed transverse wavevector, a one-dimensional subband whose minimum
(the *van Hove edge*) controls the density of states used by the charge
integrals.

Two levels of fidelity are provided:

* **zigzag tubes** ``(n, 0)`` — the exact zone-folded band-edge formula
  ``E_q = V_pp_pi * |1 + 2 cos(pi q / n)|`` for subband ``q``;
* **general tubes** — the standard semiconducting/metallic pattern
  ``E_p = (p-th factor) * a_cc * V_pp_pi / d`` with factors
  ``{1, 2, 4, 5, 7, 8, ...}`` (semiconducting) or ``{3, 6, 9, ...}``
  (metallic), which is the approximation used by circuit-level CNFET
  models.

Energies are in eV and measured from the mid-gap; the conduction-band
edge of subband ``i`` sits at ``+delta_i`` and the valence edge at
``-delta_i``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import (
    CC_BOND_LENGTH,
    GRAPHENE_LATTICE_CONSTANT,
    HOPPING_ENERGY_EV,
)
from repro.errors import ParameterError


@dataclass(frozen=True)
class Chirality:
    """Chiral indices ``(n, m)`` of a single-walled carbon nanotube."""

    n: int
    m: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m < 0:
            raise ParameterError(
                f"invalid chirality ({self.n}, {self.m}): need n > 0, m >= 0"
            )
        if self.m > self.n:
            raise ParameterError(
                f"invalid chirality ({self.n}, {self.m}): convention m <= n"
            )

    @property
    def is_metallic(self) -> bool:
        """True when ``(n - m) mod 3 == 0`` (armchair and metallic zigzag)."""
        return (self.n - self.m) % 3 == 0

    @property
    def is_zigzag(self) -> bool:
        return self.m == 0

    @property
    def is_armchair(self) -> bool:
        return self.n == self.m

    @property
    def diameter_m(self) -> float:
        """Tube diameter ``d = a sqrt(n^2 + n m + m^2) / pi`` in metres."""
        n, m = self.n, self.m
        return (
            GRAPHENE_LATTICE_CONSTANT
            * math.sqrt(n * n + n * m + m * m)
            / math.pi
        )

    @property
    def diameter_nm(self) -> float:
        return self.diameter_m * 1e9

    @classmethod
    def from_diameter(cls, diameter_nm: float) -> "Chirality":
        """Closest semiconducting zigzag tube ``(n, 0)`` to a target diameter.

        Circuit-level models are usually specified by diameter; this picks
        the nearest ``n`` with ``n mod 3 != 0`` so the tube is
        semiconducting.
        """
        if diameter_nm <= 0.0:
            raise ParameterError(f"diameter must be positive: {diameter_nm!r}")
        n_real = diameter_nm * 1e-9 * math.pi / GRAPHENE_LATTICE_CONSTANT
        candidates = sorted(
            (
                n
                for n in range(max(1, int(n_real) - 2), int(n_real) + 4)
                if n % 3 != 0
            ),
            key=lambda n: abs(n - n_real),
        )
        if not candidates:
            raise ParameterError(
                f"no semiconducting zigzag tube near d={diameter_nm} nm"
            )
        return cls(candidates[0], 0)


#: Band-edge factors of the general semiconducting pattern:
#: ``E_p = factor_p * a_cc * V_pp_pi / d``.
_SEMICONDUCTING_FACTORS = (1, 2, 4, 5, 7, 8, 10, 11)
_METALLIC_FACTORS = (3, 6, 9, 12, 15, 18, 21, 24)


class NanotubeBands:
    """Subband structure of a nanotube.

    Parameters
    ----------
    chirality:
        Tube indices.  ``Chirality.from_diameter`` helps when only a
        diameter is known.
    hopping_ev:
        Tight-binding hopping energy ``V_pp_pi`` (eV); 3.0 by default, as
        in FETToy.
    max_subbands:
        How many conduction subbands to tabulate.
    """

    def __init__(
        self,
        chirality: Chirality,
        hopping_ev: float = HOPPING_ENERGY_EV,
        max_subbands: int = 8,
    ) -> None:
        if hopping_ev <= 0.0:
            raise ParameterError(f"hopping energy must be > 0: {hopping_ev!r}")
        if max_subbands < 1:
            raise ParameterError(f"need at least one subband: {max_subbands!r}")
        self.chirality = chirality
        self.hopping_ev = hopping_ev
        self.max_subbands = max_subbands
        self._minima = self._compute_minima()

    def _compute_minima(self) -> List[float]:
        if self.chirality.is_zigzag:
            return self._zigzag_minima()
        return self._pattern_minima()

    def _zigzag_minima(self) -> List[float]:
        """Exact zone-folded band edges of a zigzag tube ``(n, 0)``.

        The graphene dispersion evaluated at the subband's axial band
        minimum gives ``E_q = t |1 + 2 cos(pi q / n)|`` for
        ``q = 1 .. n``; each distinct positive value is a conduction-band
        edge (values are doubly degenerate, which the density-of-states
        prefactor accounts for).
        """
        n = self.chirality.n
        edges = sorted(
            {
                round(
                    self.hopping_ev * abs(1.0 + 2.0 * math.cos(math.pi * q / n)),
                    12,
                )
                for q in range(1, n + 1)
            }
        )
        positive = [e for e in edges if e > 1e-9]
        if self.chirality.is_metallic:
            # Metallic tubes have a gapless linear band in addition to the
            # van Hove subbands; represent it with a zero-minimum entry.
            positive = [0.0] + positive
        return positive[: self.max_subbands]

    def _pattern_minima(self) -> List[float]:
        scale = (
            CC_BOND_LENGTH * self.hopping_ev / self.chirality.diameter_m
        )
        factors = (
            _METALLIC_FACTORS
            if self.chirality.is_metallic
            else _SEMICONDUCTING_FACTORS
        )
        minima = [f * scale for f in factors[: self.max_subbands]]
        if self.chirality.is_metallic:
            minima = [0.0] + minima[: self.max_subbands - 1]
        return minima

    @property
    def subband_minima_ev(self) -> Sequence[float]:
        """Conduction-subband minima, eV from mid-gap, ascending."""
        return tuple(self._minima)

    @property
    def band_gap_ev(self) -> float:
        """Band gap ``Eg = 2 * delta_1`` (0 for metallic tubes)."""
        if self.chirality.is_metallic:
            return 0.0
        return 2.0 * self._minima[0]

    @property
    def diameter_nm(self) -> float:
        return self.chirality.diameter_nm

    def half_gaps(self, count: int) -> List[float]:
        """First ``count`` subband minima (delta values used by the DOS)."""
        if count < 1:
            raise ParameterError(f"count must be >= 1: {count!r}")
        if count > len(self._minima):
            raise ParameterError(
                f"only {len(self._minima)} subbands tabulated, asked for {count}"
            )
        return list(self._minima[:count])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ch = self.chirality
        return (
            f"NanotubeBands(({ch.n},{ch.m}), d={self.diameter_nm:.3f} nm, "
            f"Eg={self.band_gap_ev:.3f} eV)"
        )


def band_gap_approx_ev(diameter_nm: float,
                       hopping_ev: float = HOPPING_ENERGY_EV) -> float:
    """Textbook estimate ``Eg = 2 a_cc V_pp_pi / d`` for a semiconducting tube."""
    if diameter_nm <= 0.0:
        raise ParameterError(f"diameter must be positive: {diameter_nm!r}")
    return 2.0 * CC_BOND_LENGTH * hopping_ev / (diameter_nm * 1e-9)
