"""Non-ballistic transport extension (paper §VII, future work).

The paper's model is strictly ballistic; its conclusion names extension
to non-ballistic transport as future work.  The standard first-order
correction (Lundstrom's scattering theory) multiplies the ballistic
current by a channel transmission

``T = lambda / (lambda + L)``

where ``lambda`` is the carrier mean free path and ``L`` the channel
length.  A simple empirical temperature dependence
``lambda(T) = lambda_300 * (300 / T)`` models acoustic-phonon-limited
scattering.  This module supplies that hook so device and circuit code
can be exercised in a quasi-ballistic regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class MeanFreePathModel:
    """Acoustic-phonon mean free path with 1/T scaling.

    Parameters
    ----------
    lambda_300_nm:
        Mean free path at 300 K.  Reported values for high-quality CNTs
        are hundreds of nm; 300 nm is a sensible default.
    """

    lambda_300_nm: float = 300.0

    def __post_init__(self) -> None:
        if self.lambda_300_nm <= 0.0:
            raise ParameterError(
                f"mean free path must be > 0: {self.lambda_300_nm!r}"
            )

    def mean_free_path_nm(self, temperature_k: float) -> float:
        if temperature_k <= 0.0:
            raise ParameterError(
                f"temperature must be > 0: {temperature_k!r}"
            )
        return self.lambda_300_nm * (300.0 / temperature_k)


def transmission(channel_length_nm: float, mean_free_path_nm: float) -> float:
    """Lundstrom transmission ``T = lambda / (lambda + L)`` in (0, 1].

    ``L = 0`` (or infinite mean free path) recovers the ballistic limit
    ``T = 1``.
    """
    if channel_length_nm < 0.0:
        raise ParameterError(
            f"channel length must be >= 0: {channel_length_nm!r}"
        )
    if mean_free_path_nm <= 0.0:
        raise ParameterError(
            f"mean free path must be > 0: {mean_free_path_nm!r}"
        )
    return mean_free_path_nm / (mean_free_path_nm + channel_length_nm)


def quasi_ballistic_factor(channel_length_nm: float,
                           temperature_k: float,
                           mfp_model: MeanFreePathModel | None = None) -> float:
    """Convenience: transmission at ``T`` using a mean-free-path model."""
    model = mfp_model if mfp_model is not None else MeanFreePathModel()
    return transmission(
        channel_length_nm, model.mean_free_path_nm(temperature_k)
    )
