"""Fermi-Dirac statistics.

Everything here is expressed in the reduced variable ``eta = (mu - E)/kT``
or the plain occupation argument ``x = (E - mu)/kT``; callers convert
energies to these dimensionless forms.  All functions are numerically
stable over the full double range and accept scalars or numpy arrays.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import ParameterError

ArrayLike = Union[float, np.ndarray]


def fermi_dirac(x: ArrayLike) -> ArrayLike:
    """Occupation ``f(x) = 1 / (1 + exp(x))`` with ``x = (E - mu)/kT``.

    Implemented in the overflow-free split form: for positive ``x`` the
    equivalent ``exp(-x) / (1 + exp(-x))`` is used.
    """
    x_arr = np.asarray(x, dtype=float)
    out = np.empty_like(x_arr)
    pos = x_arr >= 0.0
    exp_neg = np.exp(-x_arr[pos])
    out[pos] = exp_neg / (1.0 + exp_neg)
    out[~pos] = 1.0 / (1.0 + np.exp(x_arr[~pos]))
    if np.isscalar(x):
        return float(out)
    return out


def fermi_dirac_derivative(x: ArrayLike) -> ArrayLike:
    """``df/dx = -exp(x) / (1 + exp(x))^2 = -f(x) f(-x)``.

    Always negative; peaks at ``x = 0`` with value ``-1/4``.
    """
    f = np.asarray(fermi_dirac(x), dtype=float)
    out = -f * (1.0 - f)
    if np.isscalar(x):
        return float(out)
    return out


def fermi_dirac_integral_0(eta: ArrayLike) -> ArrayLike:
    """Order-0 Fermi-Dirac integral ``F0(eta) = ln(1 + exp(eta))``.

    This is the closed form used in eq. (13) of the paper; the
    ``logaddexp`` formulation is exact for very negative eta (returns
    ``exp(eta)``) and very positive eta (returns ``eta``).
    """
    out = np.logaddexp(0.0, np.asarray(eta, dtype=float))
    if np.isscalar(eta):
        return float(out)
    return out


def fermi_dirac_integral_m1(eta: ArrayLike) -> ArrayLike:
    """Order ``-1`` integral, ``F_{-1}(eta) = dF0/deta = f(-eta)``."""
    return fermi_dirac(-np.asarray(eta, dtype=float)) if not np.isscalar(eta) \
        else fermi_dirac(-eta)


def fermi_dirac_integral(order: float, eta: ArrayLike,
                         nodes: int = 256) -> ArrayLike:
    """Numerical Fermi-Dirac integral of real order ``j > -1``.

    ``F_j(eta) = (1/Gamma(j+1)) * Int_0^inf  t^j / (1 + exp(t - eta)) dt``

    Orders 0 and -1 dispatch to their closed forms.  Other orders use
    Gauss-Legendre quadrature on ``[0, t_max]`` with
    ``t_max = max(eta, 0) + 40`` — the integrand decays like
    ``exp(eta - t)`` beyond that, contributing less than 4e-18
    relative weight.

    Only used for completeness/testing of the substrate (bulk-semiconductor
    orders 1/2, -1/2); the CNT model itself needs only order 0.
    """
    if order == 0:
        return fermi_dirac_integral_0(eta)
    if order == -1:
        return fermi_dirac_integral_m1(eta)
    if order <= -1:
        raise ParameterError(
            f"numerical Fermi integral requires order > -1, got {order}"
        )
    if nodes < 8:
        raise ParameterError(f"need at least 8 quadrature nodes: {nodes}")
    eta_arr = np.atleast_1d(np.asarray(eta, dtype=float))
    x_nodes, weights = np.polynomial.legendre.leggauss(nodes)
    t_max = np.maximum(eta_arr, 0.0) + 40.0
    # Map [-1, 1] -> [0, t_max] per eta value.
    half = 0.5 * t_max[:, None]
    t = half * (x_nodes[None, :] + 1.0)
    ft = t**order * fermi_dirac(t - eta_arr[:, None])
    vals = np.sum(ft * weights[None, :], axis=1) * half[:, 0]
    vals /= math.gamma(order + 1.0)
    if np.isscalar(eta):
        return float(vals[0])
    return vals.reshape(np.shape(eta))


def inverse_fermi_dirac_integral_0(value: ArrayLike) -> ArrayLike:
    """Invert ``F0``: returns eta with ``F0(eta) = value`` (value > 0).

    Closed form: ``eta = ln(exp(value) - 1)``, evaluated stably via
    ``value + log1p(-exp(-value))``.
    """
    v = np.asarray(value, dtype=float)
    if np.any(v <= 0.0):
        raise ParameterError("F0 is strictly positive; cannot invert <= 0")
    out = v + np.log1p(-np.exp(-v))
    if np.isscalar(value):
        return float(out)
    return out
