"""Experiment configuration: factors x levels, repetitions, baseline.

A :class:`RunnerConfig` is the declarative description of one
experiment; an :class:`ExperimentSuite` groups several that ship as one
config file (e.g. the three sub-experiments that together regenerate
the ``batch_transient`` BENCH section).  Both round-trip through JSON
— the committed files live under ``benchmarks/configs/`` — and both
fingerprint through the same canonicalisation the campaign engine and
the job service use, so a run directory refuses to resume under an
edited config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ParameterError

__all__ = ["RunnerConfig", "ExperimentSuite", "load_config", "Level"]

#: A factor level: any JSON scalar.
Level = Union[str, int, float, bool]

_SCALARS = (str, int, float, bool)


def _check_level(factor: str, level: Any) -> Level:
    if not isinstance(level, _SCALARS):
        raise ParameterError(
            f"factor {factor!r}: levels must be JSON scalars "
            f"(str/int/float/bool), got {level!r}")
    return level


@dataclass(frozen=True)
class RunnerConfig:
    """One experiment: workload, factors x levels, repetitions, baseline.

    Parameters
    ----------
    name : str
        Experiment name; names the run directory and report section.
    workload : str
        Key into :data:`repro.exprunner.workloads.WORKLOADS`; decides
        which engine entry point a run executes and which factor names
        it understands.
    factors : mapping
        Ordered ``factor -> sequence of levels``.  Declaration order is
        the cell-expansion order of the plan (first factor outermost).
    repetitions : int
        Timing repetitions per cell.  Reports aggregate wall times as
        min-of-repetitions (best-of-N) and metrics as medians.
    baseline : mapping, optional
        ``factor -> level`` overrides naming the baseline cell of each
        run's parity comparison (e.g. ``{"engine": "sequential"}``).
        Keys must be declared factors, values declared levels.  Without
        a baseline no parity column is computed.
    params : mapping, optional
        Fixed workload parameters (grid sizes, tolerances, sample
        seeds) forwarded to the workload for every run.
    seed : int
        Base seed; per-cell seeds derive deterministically from it and
        the cell's factor levels (repetitions of a cell share a seed,
        so repeated runs are byte-identical recomputations).
    """

    name: str
    workload: str
    factors: Tuple[Tuple[str, Tuple[Level, ...]], ...]
    repetitions: int = 3
    baseline: Optional[Tuple[Tuple[str, Level], ...]] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ParameterError(
                f"experiment name must be a nonempty path-safe string: "
                f"{self.name!r}")
        if not self.factors:
            raise ParameterError(
                f"experiment {self.name!r} declares no factors")
        if self.repetitions < 1:
            raise ParameterError(
                f"repetitions must be >= 1: {self.repetitions}")
        seen = set()
        for factor, levels in self.factors:
            if factor in seen:
                raise ParameterError(
                    f"duplicate factor {factor!r} in {self.name!r}")
            seen.add(factor)
            if not levels:
                raise ParameterError(
                    f"factor {factor!r} has no levels")
            for level in levels:
                _check_level(factor, level)
        if self.baseline is not None:
            declared = dict(self.factors)
            for factor, level in self.baseline:
                if factor not in declared:
                    raise ParameterError(
                        f"baseline names unknown factor {factor!r}; "
                        f"declared factors: {sorted(declared)}")
                if level not in declared[factor]:
                    raise ParameterError(
                        f"baseline level {level!r} is not a declared "
                        f"level of factor {factor!r}: "
                        f"{list(declared[factor])}")

    # -- constructors --------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunnerConfig":
        """Build a config from a JSON-style dict (see docs/experiments.md).

        Factor order follows the dict's insertion order, which
        ``json.load`` preserves — the config file's textual order is
        the plan's cell order.
        """
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"experiment config must be an object: {payload!r}")
        known = {"name", "workload", "factors", "repetitions",
                 "baseline", "params", "seed"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ParameterError(
                f"unknown experiment config keys {unknown}; expected a "
                f"subset of {sorted(known)}")
        for key in ("name", "workload", "factors"):
            if key not in payload:
                raise ParameterError(
                    f"experiment config is missing required key "
                    f"{key!r}")
        factors = payload["factors"]
        if not isinstance(factors, Mapping):
            raise ParameterError(
                f"factors must be an object of factor -> level list: "
                f"{factors!r}")
        factor_items = []
        for factor, levels in factors.items():
            if isinstance(levels, _SCALARS):
                levels = [levels]
            factor_items.append((str(factor), tuple(levels)))
        baseline = payload.get("baseline")
        if baseline is not None:
            if not isinstance(baseline, Mapping):
                raise ParameterError(
                    f"baseline must be an object of factor -> level: "
                    f"{baseline!r}")
            baseline = tuple((str(k), v) for k, v in baseline.items())
        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise ParameterError(
                f"params must be an object: {params!r}")
        return cls(
            name=str(payload["name"]),
            workload=str(payload["workload"]),
            factors=tuple(factor_items),
            repetitions=int(payload.get("repetitions", 3)),
            baseline=baseline,
            params=tuple(sorted(params.items())),
            seed=int(payload.get("seed", 0)),
        )

    # -- identity ------------------------------------------------------

    @property
    def factor_names(self) -> List[str]:
        """Declared factor names, in declaration (expansion) order."""
        return [name for name, _levels in self.factors]

    @property
    def params_dict(self) -> Dict[str, Any]:
        """Fixed workload parameters as a plain dict."""
        return dict(self.params)

    @property
    def baseline_dict(self) -> Optional[Dict[str, Level]]:
        """Baseline overrides as a dict, or ``None``."""
        return dict(self.baseline) if self.baseline is not None else None

    def describe(self) -> Dict:
        """JSON-able manifest of the experiment (fingerprint input)."""
        return {
            "name": self.name,
            "workload": self.workload,
            "factors": {name: list(levels)
                        for name, levels in self.factors},
            "repetitions": self.repetitions,
            "baseline": self.baseline_dict,
            "params": self.params_dict,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical manifest (resume safety check).

        Same canonicalisation as ``Campaign.fingerprint`` and the job
        service cache keys
        (:func:`repro.service.fingerprint.manifest_fingerprint`).
        """
        from repro.service.fingerprint import manifest_fingerprint

        return manifest_fingerprint(self.describe())

    def with_factor(self, name: str,
                    levels: Sequence[Level]) -> "RunnerConfig":
        """Copy of this config with one factor's levels replaced.

        Used by drivers that must prune unavailable levels (e.g. the
        ``compiled`` kernel tier on a machine without numba or a C
        compiler) before executing a committed config.
        """
        if name not in self.factor_names:
            raise ParameterError(
                f"cannot restrict unknown factor {name!r}; declared "
                f"factors: {self.factor_names}")
        factors = tuple(
            (fname, tuple(levels) if fname == name else flevels)
            for fname, flevels in self.factors)
        baseline = self.baseline
        if baseline is not None:
            baseline = tuple((f, lv) for f, lv in baseline
                             if f != name or lv in levels) or None
        return RunnerConfig(
            name=self.name, workload=self.workload, factors=factors,
            repetitions=self.repetitions, baseline=baseline,
            params=self.params, seed=self.seed)


@dataclass(frozen=True)
class ExperimentSuite:
    """A named group of experiments shipped as one config file.

    Each experiment keeps its own run directory
    (``<run_dir>/<experiment name>/``) and its own run table; the
    suite exists so a BENCH section that needs several matrices (e.g.
    timing grids plus a parity experiment) is still one reviewable,
    committed config file.
    """

    name: str
    experiments: Tuple[RunnerConfig, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ParameterError(
                f"suite {self.name!r} declares no experiments")
        names = [e.name for e in self.experiments]
        if len(set(names)) != len(names):
            raise ParameterError(
                f"suite {self.name!r} has duplicate experiment names: "
                f"{names}")

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSuite":
        """Build a suite from ``{"name": ..., "experiments": [...]}``."""
        if "experiments" not in payload:
            raise ParameterError(
                f"suite config needs an 'experiments' list: "
                f"{sorted(payload)}")
        experiments = tuple(RunnerConfig.from_dict(e)
                            for e in payload["experiments"])
        return cls(name=str(payload.get("name", "suite")),
                   experiments=experiments)

    def describe(self) -> Dict:
        """JSON-able manifest of the whole suite."""
        return {"name": self.name,
                "experiments": [e.describe() for e in self.experiments]}

    def __iter__(self):
        """Iterate over the member experiment configs."""
        return iter(self.experiments)


def load_config(path) -> ExperimentSuite:
    """Load a config file into a suite (single experiments wrap into a
    one-member suite, so callers handle one shape).

    The file holds either one experiment object or
    ``{"name": ..., "experiments": [...]}``.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(
            f"unreadable experiment config {path}: {exc}") from exc
    if isinstance(payload, Mapping) and "experiments" in payload:
        return ExperimentSuite.from_dict(payload)
    config = RunnerConfig.from_dict(payload)
    return ExperimentSuite(name=config.name, experiments=(config,))
