"""Declarative experiment runner: factors x levels x repetitions.

Every performance claim in ``BENCH_perf.json`` is a comparison between
cells of a small experiment matrix — engine mode batch vs sequential,
sparse vs dense backend, compiled vs numpy kernel tier.  This package
turns those matrices into *data* instead of hand-written timing loops:

* :class:`RunnerConfig` declares one experiment — a workload name, an
  ordered ``factors -> levels`` mapping, a repetition count and a
  designated *baseline* cell for parity checks — and serialises to the
  JSON config files under ``benchmarks/configs/``.
* :func:`expand_plan` expands the config into a deterministic run
  table: the Cartesian product of all factor levels, repeated
  ``repetitions`` times in repetition-major order (all cells of
  repetition 0, then all of repetition 1, ...) so machine noise biases
  every cell alike — the declarative form of the interleaved timing
  loops ``bench_report.py`` used to hand-write.
* :class:`ExperimentRunner` executes the plan through the existing
  engine entry points, recording wall time, Newton iterations, peak
  RSS and a parity signature per run into a resumable on-disk run
  directory (``manifest.json`` + per-run raw dirs + ``run_table.csv``
  with the documented :data:`~repro.exprunner.runtable.RUN_TABLE_COLUMNS`).
* :mod:`repro.exprunner.report` aggregates repetitions (min for wall
  times — best-of-N robust timing — median for metrics) and renders
  deterministic report payloads; ``benchmarks/bench_report.py`` builds
  its ``batch_transient`` and ``compiled_hot_path`` sections from
  these instead of ad-hoc loops.

See ``docs/experiments.md`` for the config schema, the
``run_table.csv`` column dictionary, resume semantics and the robust
timing protocol.  The CLI front end is ``python -m repro experiments``.
"""

from repro.exprunner.config import (
    ExperimentSuite,
    RunnerConfig,
    load_config,
)
from repro.exprunner.executor import (
    ExperimentResult,
    ExperimentRunner,
)
from repro.exprunner.plan import RunSpec, expand_plan
from repro.exprunner.report import render_report, summarize_cells
from repro.exprunner.runtable import (
    RUN_TABLE_COLUMNS,
    read_run_table,
    write_run_table,
)
from repro.exprunner.timing import robust_time
from repro.exprunner.workloads import WORKLOADS, Workload, register_workload

__all__ = [
    "RunnerConfig",
    "ExperimentSuite",
    "load_config",
    "RunSpec",
    "expand_plan",
    "ExperimentRunner",
    "ExperimentResult",
    "RUN_TABLE_COLUMNS",
    "read_run_table",
    "write_run_table",
    "render_report",
    "summarize_cells",
    "robust_time",
    "Workload",
    "WORKLOADS",
    "register_workload",
]
