"""Experiment workloads: factor points -> engine runs.

A workload is the executable meaning of a config: it receives one
run's factor assignment (``point``), the config's fixed ``params`` and
the derived per-cell ``seed``, executes the corresponding engine entry
point, and returns a measurement dict:

``wall_s``
    Wall-clock seconds of the *timed region* — the engine call only;
    setup (circuit construction, DC warm-up, sampling) is excluded.
``newton_iterations``
    Engine Newton iterations, or NaN where the entry point reports
    none.
``metrics``
    Scalar result metrics (become ``run_table.csv`` columns).
``signature``
    ``name -> list of float`` parity payload; the executor compares it
    against the baseline cell's signature under the workload's
    ``parity`` mode (``abs``: max |delta|, ``rel``: max
    |delta|/max(|ref|, tiny)).

Registered workloads cover the BENCH sections the runner regenerates:

* ``char_grid`` — a gate-characterization load x slew grid, lane-batched
  vs sequential (factor ``engine``).
* ``mc_ring`` — a ring-oscillator MC campaign through
  :class:`~repro.variability.circuits.RingOscillatorEvaluator`,
  batch vs sequential (factor ``engine``).
* ``ring_lanes`` — heterogeneous MC ring instances on a shared fixed
  grid, lane-batched vs per-lane scalar (factor ``engine``); the
  signature carries the full waveforms, so the parity column *is* the
  1e-9 V lane-parity gate.
* ``circuit_transient`` — a single transient over the generic factor
  matrix: ``circuit`` (ring | rca), ``size``, ``backend``
  (dense | sparse | auto), ``kernels`` (numpy | compiled | numba | cc
  | auto), ``chord`` (on | off).
* ``vsc_sweep`` — the stacked-VSC kernel swept over a dense bias grid
  per kernel tier (factor ``kernels``); the parity column is the
  kernel-parity gate.
* ``mc_device`` — the device-metric MC campaign vs the seed-style
  naive per-sample loop (factor ``engine`` in {campaign_cold,
  campaign_warm, naive, naive_cached}); the signature carries the
  per-sample Ion values of the shared sample prefix (the campaign
  quantises devices, so the parity column measures quantisation, not
  a bug — recorded, never gated tightly).
* ``ring_adaptive`` — the adaptive engine pinned to the legacy fixed
  grid vs the legacy engine (factor ``engine``); the parity column is
  the pinned-grid parity gate.
* ``ring_accuracy`` — a waveform-accuracy/Newton-work ladder (factor
  ``mode`` in {reference, adaptive, fixed_<dt>}); every signature is
  the waveform interpolated onto one shared grid, so each cell's
  parity column *is* its waveform error against the converged
  reference baseline.
* ``circuit_dc`` — one :func:`robust_dc_solve` per backend (factor
  ``backend``); the signature carries the node voltages.
* ``dc_sweep_chain`` — the 101-stage inverter-chain supply-ramp DC
  sweep per backend (factor ``backend``).
* ``partitioned_transient`` — the partitioned latency-exploiting
  transient vs the monolithic engine on a ripple-carry adder (factor
  ``solver`` in {monolithic, partitioned, partitioned_nobypass};
  param ``activity`` in {hold, pulse}).

New workloads register through :func:`register_workload`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping

import numpy as np

from repro.errors import ParameterError

__all__ = ["Workload", "WORKLOADS", "register_workload"]


@dataclass(frozen=True)
class Workload:
    """A named, registered experiment workload.

    Attributes
    ----------
    name : str
        Registry key (the config's ``workload`` field).
    run : callable
        ``run(point, params, seed) -> dict`` with the keys documented
        in the module docstring.
    parity : str
        Signature comparison mode vs the baseline cell: ``"abs"``
        (max absolute deviation) or ``"rel"`` (max relative
        deviation).
    description : str
        One-line summary shown by ``repro experiments --list``.
    """

    name: str
    run: Callable[[Mapping, Mapping, int], Dict[str, Any]]
    parity: str = "abs"
    description: str = ""


#: Registered workloads by name.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Register (or replace) a workload under its name."""
    if workload.parity not in ("abs", "rel"):
        raise ParameterError(
            f"workload parity mode must be 'abs' or 'rel': "
            f"{workload.parity!r}")
    WORKLOADS[workload.name] = workload
    return workload


def _get(point: Mapping, params: Mapping, name: str, default=None):
    """Look ``name`` up as a factor first, then as a fixed param."""
    if name in point:
        return point[name]
    if name in params:
        return params[name]
    if default is None:
        raise ParameterError(
            f"workload needs {name!r} as a factor or param "
            f"(factors: {sorted(point)}, params: {sorted(params)})")
    return default


def _newton_options(chord) -> "object":
    from repro.circuit.mna import NewtonOptions

    if str(chord) == "on":     # tuned chord-Newton default (PR 6)
        return NewtonOptions(vtol=1e-12, reltol=1e-10)
    if str(chord) == "off":    # legacy full-Newton iteration
        return NewtonOptions(vtol=1e-12, reltol=1e-10,
                             jacobian_reuse_tol=0.0)
    raise ParameterError(
        f"chord factor must be 'on' or 'off': {chord!r}")


def _decimate(values: np.ndarray, limit: int) -> List[float]:
    values = np.asarray(values, dtype=float).ravel()
    if values.size <= limit:
        return [float(v) for v in values]
    stride = int(np.ceil(values.size / limit))
    picked = list(values[::stride])
    if values.size and (values.size - 1) % stride:
        picked.append(values[-1])
    return [float(v) for v in picked]


# ----------------------------------------------------------------------
# char_grid
# ----------------------------------------------------------------------

def _run_char_grid(point: Mapping, params: Mapping,
                   seed: int) -> Dict[str, Any]:
    from repro.characterize import characterize_gate
    from repro.circuit.logic import LogicFamily

    engine = _get(point, params, "engine")
    if engine not in ("batch", "sequential"):
        raise ParameterError(
            f"char_grid engine must be 'batch' or 'sequential': "
            f"{engine!r}")
    gate = _get(point, params, "gate", "nand2")
    vdd = float(_get(point, params, "vdd", 0.6))
    loads = tuple(float(v) for v in params["loads_f"])
    slews = tuple(float(v) for v in params["slews_s"])
    family = LogicFamily.default(vdd=vdd)
    start = time.perf_counter()
    table = characterize_gate(family, gate, loads, slews,
                              use_batch=(engine == "batch"))
    wall = time.perf_counter() - start
    signature: Dict[str, List[float]] = {}
    delays = []
    for arc_name in sorted(table.arcs):
        arc = table.arcs[arc_name]
        for key in ("delay", "out_slew", "energy"):
            grid = np.asarray(getattr(arc, key), dtype=float)
            signature[f"{arc_name}.{key}"] = [float(v)
                                              for v in grid.ravel()]
            if key == "delay":
                delays.extend(grid.ravel())
    delays = np.asarray(delays, dtype=float)
    finite = delays[np.isfinite(delays)]
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {
            "lanes": float(len(loads) * len(slews)),
            "median_delay_s": (float(np.median(finite))
                               if finite.size else float("nan")),
        },
        "signature": signature,
    }


# ----------------------------------------------------------------------
# mc_ring
# ----------------------------------------------------------------------

def _run_mc_ring(point: Mapping, params: Mapping,
                 seed: int) -> Dict[str, Any]:
    from repro.variability.circuits import RingOscillatorEvaluator
    from repro.variability.params import default_device_space
    from repro.variability.sampling import monte_carlo

    engine = _get(point, params, "engine")
    if engine not in ("batch", "sequential"):
        raise ParameterError(
            f"mc_ring engine must be 'batch' or 'sequential': "
            f"{engine!r}")
    n = int(_get(point, params, "samples", 256))
    sample_seed = int(_get(point, params, "sample_seed", seed))
    space = default_device_space()
    samples = monte_carlo(space, n, seed=sample_seed)
    evaluator = RingOscillatorEvaluator(
        space, use_batch=(engine == "batch"))
    start = time.perf_counter()
    rows = evaluator.evaluate(samples)
    wall = time.perf_counter() - start
    periods = np.array([row["period"] for row in rows], dtype=float)
    valid = periods[np.isfinite(periods)]
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {
            "samples": float(n),
            "distinct_keys": float(len(evaluator._memo)),
            "valid_fraction": float(valid.size) / max(n, 1),
            "median_period_s": (float(np.median(valid))
                                if valid.size else float("nan")),
        },
        "signature": {"period_s": [float(p) for p in periods]},
    }


# ----------------------------------------------------------------------
# ring_lanes
# ----------------------------------------------------------------------

def _run_ring_lanes(point: Mapping, params: Mapping,
                    seed: int) -> Dict[str, Any]:
    from repro.circuit.batch_sim import (
        batch_operating_points,
        batch_transient,
    )
    from repro.circuit.logic import build_ring_oscillator
    from repro.circuit.mna import NewtonOptions
    from repro.circuit.transient import (
        initial_conditions_from_op,
        transient,
    )
    from repro.variability.campaign import quantize_sample
    from repro.variability.circuits import RingOscillatorEvaluator
    from repro.variability.params import default_device_space
    from repro.variability.sampling import monte_carlo

    engine = _get(point, params, "engine")
    if engine not in ("batch", "scalar"):
        raise ParameterError(
            f"ring_lanes engine must be 'batch' or 'scalar': "
            f"{engine!r}")
    lanes = int(_get(point, params, "lanes", 16))
    stages = int(_get(point, params, "stages", 3))
    tstop = float(_get(point, params, "tstop", 1.5e-10))
    dt = float(_get(point, params, "dt", 2e-12))
    sample_seed = int(_get(point, params, "sample_seed", seed))
    vdd = float(_get(point, params, "vdd", 0.6))

    tight = NewtonOptions(vtol=1e-12, reltol=1e-10)
    space = default_device_space()
    samples = monte_carlo(space, max(lanes * 4, lanes), seed=sample_seed)
    keys = list(dict.fromkeys(
        quantize_sample(s, None) for s in samples))[:lanes]
    evaluator = RingOscillatorEvaluator(space, stages=stages, vdd=vdd)
    circuits, nodes = [], ()
    for key in keys:
        ring, nodes = build_ring_oscillator(evaluator._family(key),
                                            stages=stages)
        circuits.append(ring)

    signature: Dict[str, List[float]] = {}
    if engine == "batch":
        x0 = batch_operating_points(circuits, tight)
        x0[:, circuits[0].node_index[nodes[0]]] = 0.0
        x0[:, circuits[0].node_index[nodes[1]]] = vdd
        start = time.perf_counter()
        result = batch_transient(circuits, tstop, dt=dt, method="be",
                                 options=tight, x0=x0,
                                 record_currents=False)
        wall = time.perf_counter() - start
        for lane in range(len(keys)):
            for node in nodes:
                signature[f"lane{lane}.v({node})"] = [
                    float(v) for v in result[lane].trace(f"v({node})")]
    else:
        start = time.perf_counter()
        for lane, key in enumerate(keys):
            ring, ring_nodes = build_ring_oscillator(
                evaluator._family(key), stages=stages)
            x_lane = initial_conditions_from_op(
                ring, {ring_nodes[0]: 0.0, ring_nodes[1]: vdd}, tight)
            ref = transient(ring, tstop=tstop, dt=dt, x0=x_lane,
                            method="be", options=tight,
                            record_currents=False)
            for node in ring_nodes:
                signature[f"lane{lane}.v({node})"] = [
                    float(v) for v in ref.trace(f"v({node})")]
        wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {"lanes": float(len(keys))},
        "signature": signature,
    }


# ----------------------------------------------------------------------
# circuit_transient
# ----------------------------------------------------------------------

def _build_ring(params: Mapping, size: int, vdd: float):
    from repro.circuit.logic import LogicFamily, build_ring_oscillator
    from repro.circuit.transient import initial_conditions_from_op

    family = LogicFamily.default(vdd=vdd)
    ring, nodes = build_ring_oscillator(family, stages=size)
    x0 = initial_conditions_from_op(
        ring, {nodes[0]: 0.0, nodes[1]: vdd})
    tran = dict(tstop=float(params.get("tstop", 1.5e-10)),
                dt=float(params.get("dt", 2e-12)), method="be")
    return ring, x0, tran


def _build_rca(params: Mapping, size: int, vdd: float, options,
               backend: str):
    from repro.circuit.logic import LogicFamily, build_ripple_carry_adder
    from repro.circuit.mna import robust_dc_solve
    from repro.circuit.waveforms import Pulse

    family = LogicFamily.default(vdd=vdd)
    cin = Pulse(0.0, vdd, 5e-12, 1e-12, 1e-12, 4e-11, 1e-10)
    adder, _info = build_ripple_carry_adder(
        family, size, a_value=(1 << size) - 1, b_value=0, cin_wave=cin)
    x0 = robust_dc_solve(adder, None, options, backend=backend)
    dt = float(params.get("dt", 5e-13))
    tran = dict(tstop=float(params.get("tstop", 3e-11)), method="trap",
                adaptive=True, dt_min=dt, dt_max=dt)
    return adder, x0, tran


def _run_circuit_transient(point: Mapping, params: Mapping,
                           seed: int) -> Dict[str, Any]:
    from repro.circuit.transient import transient
    from repro.pwl.kernels import using_kernels

    circuit_kind = _get(point, params, "circuit", "ring")
    size = int(_get(point, params, "size", 3))
    backend = str(_get(point, params, "backend", "auto"))
    kernels = str(_get(point, params, "kernels", "auto"))
    chord = str(_get(point, params, "chord", "on"))
    vdd = float(_get(point, params, "vdd", 0.6))
    options = _newton_options(chord)
    params = dict(params)

    with using_kernels(kernels):
        if circuit_kind == "ring":
            circuit, x0, tran = _build_ring(params, size, vdd)
        elif circuit_kind == "rca":
            circuit, x0, tran = _build_rca(params, size, vdd, options,
                                           backend)
        else:
            raise ParameterError(
                f"circuit_transient circuit must be 'ring' or 'rca': "
                f"{circuit_kind!r}")
        stats: Dict = {}
        start = time.perf_counter()
        ds = transient(circuit, x0=x0.copy(), options=options,
                       backend=backend, stats=stats,
                       record_currents=False, **tran)
        wall = time.perf_counter() - start

    limit = int(params.get("signature_points", 128))
    node_limit = int(params.get("signature_nodes", 24))
    nodes = list(circuit.nodes)
    if len(nodes) > node_limit:
        stride = int(np.ceil(len(nodes) / node_limit))
        nodes = nodes[::stride]
    signature = {f"v({node})": _decimate(ds.trace(f"v({node})"), limit)
                 for node in nodes}
    metrics = {
        "steps": float(stats.get("steps", 0)),
        "dimension": float(circuit.dimension()),
    }
    probe = params.get("probe_node")
    if probe is not None:
        # e.g. the rca carry-launch sanity check reads v(s0) at tstop
        metrics["probe_final_v"] = float(ds.trace(f"v({probe})")[-1])
    return {
        "wall_s": wall,
        "newton_iterations": float(stats.get("iterations", 0)),
        "metrics": metrics,
        "signature": signature,
    }


# ----------------------------------------------------------------------
# vsc_sweep
# ----------------------------------------------------------------------

def _run_vsc_sweep(point: Mapping, params: Mapping,
                   seed: int) -> Dict[str, Any]:
    from repro.experiments.workloads import default_device_parameters
    from repro.pwl.batch import StackedVscSolver
    from repro.pwl.device import CNFET
    from repro.pwl.kernels import using_kernels

    kernels = str(_get(point, params, "kernels", "numpy"))
    points = int(_get(point, params, "grid_points", 25))
    vmax = float(_get(point, params, "vmax", 0.6))
    models = params.get("models", ("model1", "model2"))
    devices = [CNFET(default_device_parameters(), model=m)
               for m in models]
    vg_grid = np.linspace(0.0, vmax, points)
    vd_grid = np.linspace(0.0, vmax, points)
    stacked = StackedVscSolver([d.solver for d in devices])
    hint = np.zeros(stacked.n_lanes)
    out = np.empty((vg_grid.size, vd_grid.size, stacked.n_lanes))
    with using_kernels(kernels):
        start = time.perf_counter()
        for i, vg in enumerate(vg_grid):
            for j, vd in enumerate(vd_grid):
                out[i, j] = stacked.solve(
                    np.full(stacked.n_lanes, vg),
                    np.full(stacked.n_lanes, vd), hint)
        wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {"solves": float(points * points)},
        "signature": {"vsc_v": [float(v) for v in out.ravel()]},
    }


# ----------------------------------------------------------------------
# mc_device
# ----------------------------------------------------------------------

def _run_mc_device(point: Mapping, params: Mapping,
                   seed: int) -> Dict[str, Any]:
    from repro.pwl.device import clear_fit_cache, fit_cache_info
    from repro.variability.campaign import DeviceMetricsEvaluator
    from repro.variability.params import default_device_space

    from repro.variability.sampling import monte_carlo

    engine = _get(point, params, "engine")
    n = int(_get(point, params, "samples", 2000))
    subset = int(_get(point, params, "naive_samples", 200))
    sample_seed = int(_get(point, params, "sample_seed", seed))
    space = default_device_space()
    samples = monte_carlo(space, n, seed=sample_seed)

    fits = float("nan")
    distinct = float("nan")
    if engine == "campaign_cold":
        # cold must mean cold regardless of what ran before in this
        # process (other cells, earlier repetitions): drop the
        # process-wide fit cache so the timed evaluate pays the full
        # fit cost.
        clear_fit_cache()
        evaluator = DeviceMetricsEvaluator(space)
        start = time.perf_counter()
        rows = evaluator.evaluate(samples)
        wall = time.perf_counter() - start
        fits = float(fit_cache_info()["misses"])
        distinct = float(len(evaluator._memo))
        evaluated = n
    elif engine == "campaign_warm":
        # warm the process-wide fit cache (untimed), then time a fresh
        # evaluator: the per-evaluator metric memo stays cold, the
        # shared fits are hits.
        DeviceMetricsEvaluator(space).evaluate(samples)
        evaluator = DeviceMetricsEvaluator(space)
        start = time.perf_counter()
        rows = evaluator.evaluate(samples)
        wall = time.perf_counter() - start
        distinct = float(len(evaluator._memo))
        evaluated = n
    elif engine in ("naive", "naive_cached"):
        # the seed-style per-sample loop costs strictly per sample, so
        # it is measured on a subset and extrapolated by the report
        evaluator = DeviceMetricsEvaluator(space)
        use_cache = engine == "naive_cached"
        if use_cache:
            evaluator.evaluate_naive(samples[:1], use_fit_cache=True)
        start = time.perf_counter()
        rows = evaluator.evaluate_naive(samples[:subset],
                                        use_fit_cache=use_cache)
        wall = time.perf_counter() - start
        evaluated = subset
    else:
        raise ParameterError(
            f"mc_device engine must be campaign_cold, campaign_warm, "
            f"naive or naive_cached: {engine!r}")

    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {
            "samples_evaluated": float(evaluated),
            "per_sample_s": wall / max(evaluated, 1),
            "fits": fits,
            "distinct_devices": distinct,
        },
        # the shared prefix every engine evaluates; the campaign
        # quantises devices, so campaign-vs-naive deviation here is
        # the documented quantisation error, not an engine bug
        "signature": {"ion_a": [float(r["ion"])
                                for r in rows[:subset]]},
    }


# ----------------------------------------------------------------------
# ring_adaptive / ring_accuracy
# ----------------------------------------------------------------------

def _ring_setup(point: Mapping, params: Mapping):
    from repro.circuit.logic import LogicFamily, build_ring_oscillator
    from repro.circuit.transient import initial_conditions_from_op

    stages = int(_get(point, params, "stages", 3))
    vdd = float(_get(point, params, "vdd", 0.6))
    family = LogicFamily.default(vdd=vdd)
    ring, nodes = build_ring_oscillator(family, stages=stages)
    x0 = initial_conditions_from_op(
        ring, {nodes[0]: 0.0, nodes[1]: vdd})
    return ring, nodes, x0


def _run_ring_adaptive(point: Mapping, params: Mapping,
                       seed: int) -> Dict[str, Any]:
    from repro.circuit.mna import NewtonOptions
    from repro.circuit.transient import transient

    engine = _get(point, params, "engine")
    if engine not in ("legacy", "pinned"):
        raise ParameterError(
            f"ring_adaptive engine must be 'legacy' or 'pinned': "
            f"{engine!r}")
    ring, nodes, x0 = _ring_setup(point, params)
    tstop = float(_get(point, params, "tstop", 1.5e-10))
    dt = float(_get(point, params, "dt", 2e-12))
    # tight Newton tolerances so the comparison measures the engines,
    # not the Newton stop criterion
    tight = NewtonOptions(vtol=1e-12, reltol=1e-10)
    kwargs: Dict[str, Any] = dict(tstop=tstop, dt=dt, x0=x0,
                                  method="be", options=tight)
    if engine == "pinned":
        kwargs.update(adaptive=True, dt_min=dt, dt_max=dt)
    stats: Dict = {}
    start = time.perf_counter()
    ds = transient(ring, stats=stats, **kwargs)
    wall = time.perf_counter() - start
    signature = {f"v({n})": [float(v) for v in ds.trace(f"v({n})")]
                 for n in nodes}
    return {
        "wall_s": wall,
        "newton_iterations": float(stats.get("iterations", 0)),
        "metrics": {"steps": float(stats.get("steps", 0))},
        "signature": signature,
    }


def _run_ring_accuracy(point: Mapping, params: Mapping,
                       seed: int) -> Dict[str, Any]:
    from repro.circuit.transient import transient

    mode = str(_get(point, params, "mode"))
    ring, nodes, x0 = _ring_setup(point, params)
    tstop = float(_get(point, params, "tstop", 1e-11))
    grid_points = int(_get(point, params, "grid_points", 801))
    kwargs: Dict[str, Any] = {}
    if mode == "reference":
        kwargs = dict(dt=float(_get(point, params, "reference_dt",
                                    2.5e-15)), method="trap")
    elif mode == "adaptive":
        kwargs = dict(method="trap",
                      rtol=float(_get(point, params, "rtol", 3e-4)))
    elif mode.startswith("fixed_"):
        kwargs = dict(dt=float(mode[len("fixed_"):]), method="be")
    else:
        raise ParameterError(
            f"ring_accuracy mode must be 'reference', 'adaptive' or "
            f"'fixed_<dt>': {mode!r}")
    stats: Dict = {}
    start = time.perf_counter()
    ds = transient(ring, tstop=tstop, x0=x0, stats=stats, **kwargs)
    wall = time.perf_counter() - start
    # every mode reports its waveform on one shared grid, so each
    # cell's parity column vs the reference baseline IS its error
    tgrid = np.linspace(0.0, tstop, grid_points)
    signature = {
        f"v({n})": [float(v) for v in
                    np.interp(tgrid, ds.axis, ds.trace(f"v({n})"))]
        for n in nodes
    }
    return {
        "wall_s": wall,
        "newton_iterations": float(stats.get("iterations", 0)),
        "metrics": {
            "steps": float(stats.get("steps", 0)),
            "rejected_lte": float(stats.get("rejected_lte", 0)),
        },
        "signature": signature,
    }


# ----------------------------------------------------------------------
# circuit_dc / dc_sweep_chain
# ----------------------------------------------------------------------

def _run_circuit_dc(point: Mapping, params: Mapping,
                    seed: int) -> Dict[str, Any]:
    from repro.circuit.logic import LogicFamily, build_ripple_carry_adder
    from repro.circuit.mna import robust_dc_solve
    from repro.circuit.waveforms import Pulse

    backend = str(_get(point, params, "backend", "auto"))
    size = int(_get(point, params, "size", 32))
    vdd = float(_get(point, params, "vdd", 0.6))
    options = _newton_options(_get(point, params, "chord", "on"))
    family = LogicFamily.default(vdd=vdd)
    cin = Pulse(0.0, vdd, 5e-12, 1e-12, 1e-12, 4e-11, 1e-10)
    adder, _info = build_ripple_carry_adder(
        family, size, a_value=(1 << size) - 1, b_value=0, cin_wave=cin)
    start = time.perf_counter()
    x = robust_dc_solve(adder, None, options, backend=backend)
    wall = time.perf_counter() - start
    n_nodes = adder.n_nodes
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {"dimension": float(adder.dimension())},
        "signature": {"node_v": [float(v) for v in x[:n_nodes]]},
    }


def _run_dc_sweep_chain(point: Mapping, params: Mapping,
                        seed: int) -> Dict[str, Any]:
    from repro.circuit.dc import dc_sweep
    from repro.circuit.logic import LogicFamily, build_inverter_chain
    from repro.circuit.mna import NewtonOptions

    backend = str(_get(point, params, "backend", "auto"))
    stages = int(_get(point, params, "stages", 101))
    points = int(_get(point, params, "points", 21))
    vdd = float(_get(point, params, "vdd", 0.6))
    family = LogicFamily.default(vdd=vdd)
    chain, _out = build_inverter_chain(family, stages)
    # supply ramp: every sweep point keeps all stages saturated (an
    # input sweep would cross the chain's metastable threshold)
    opts = NewtonOptions(vtol=1e-11, reltol=1e-9)
    values = np.linspace(0.0, vdd, points)
    start = time.perf_counter()
    sweep = dc_sweep(chain, "vdd_src", values, opts, backend=backend)
    wall = time.perf_counter() - start
    signature = {f"v({node})": [float(v)
                                for v in sweep.trace(f"v({node})")]
                 for node in chain.nodes}
    return {
        "wall_s": wall,
        "newton_iterations": float("nan"),
        "metrics": {
            "dimension": float(chain.dimension()),
            "points": float(points),
        },
        "signature": signature,
    }


# ----------------------------------------------------------------------
# partitioned_transient
# ----------------------------------------------------------------------

def _run_partitioned_transient(point: Mapping, params: Mapping,
                               seed: int) -> Dict[str, Any]:
    from repro.circuit.logic import LogicFamily, build_ripple_carry_adder
    from repro.circuit.mna import robust_dc_solve
    from repro.circuit.transient import transient
    from repro.circuit.waveforms import Pulse

    solver = _get(point, params, "solver")
    if solver not in ("monolithic", "partitioned",
                      "partitioned_nobypass"):
        raise ParameterError(
            f"partitioned_transient solver must be 'monolithic', "
            f"'partitioned' or 'partitioned_nobypass': {solver!r}")
    activity = str(_get(point, params, "activity", "hold"))
    if activity not in ("hold", "pulse"):
        raise ParameterError(
            f"partitioned_transient activity must be 'hold' or "
            f"'pulse': {activity!r}")
    size = int(_get(point, params, "size", 32))
    vdd = float(_get(point, params, "vdd", 0.6))
    tstop = float(_get(point, params, "tstop", 2e-11))
    dt = float(_get(point, params, "dt", 5e-13))
    family = LogicFamily.default(vdd=vdd)
    adder, _info = build_ripple_carry_adder(family, size,
                                            a_value=3, b_value=5)
    if activity == "pulse":
        for el in adder.elements:
            if el.name == "va0":
                el.waveform = Pulse(v1=0.0, v2=vdd, delay=2e-12,
                                    rise=1e-12, fall=1e-12,
                                    width=6e-12, period=1.0)
    x0 = robust_dc_solve(adder)
    kwargs: Dict[str, Any] = {}
    if solver != "monolithic":
        kwargs["partition"] = "auto"
    if solver == "partitioned_nobypass":
        kwargs["bypass_tol"] = 0.0
    stats: Dict = {}
    start = time.perf_counter()
    ds = transient(adder, tstop=tstop, dt=dt, x0=x0,
                   record_currents=False, stats=stats, **kwargs)
    wall = time.perf_counter() - start
    limit = int(params.get("signature_points", 128))
    node_limit = int(params.get("signature_nodes", 24))
    nodes = list(adder.nodes)
    if len(nodes) > node_limit:
        stride = int(np.ceil(len(nodes) / node_limit))
        nodes = nodes[::stride]
    signature = {f"v({node})": _decimate(ds.trace(f"v({node})"), limit)
                 for node in nodes}
    return {
        "wall_s": wall,
        "newton_iterations": float(stats.get("iterations", 0)),
        "metrics": {
            "steps": float(stats.get("steps", 0)),
            "dimension": float(adder.dimension()),
            "block_steps_active": float(
                stats.get("partition_block_steps_active", 0)),
            "block_steps_bypassed": float(
                stats.get("partition_block_steps_bypassed", 0)),
            "interface_solve_reuses": float(
                stats.get("partition_interface_solve_reuses", 0)),
            "relax_escalations": float(
                stats.get("partition_relax_escalations", 0)),
        },
        "signature": signature,
    }


register_workload(Workload(
    name="char_grid", run=_run_char_grid, parity="rel",
    description="gate characterization load x slew grid, "
                "engine in {batch, sequential}"))
register_workload(Workload(
    name="mc_ring", run=_run_mc_ring, parity="rel",
    description="ring-oscillator MC campaign, "
                "engine in {batch, sequential}"))
register_workload(Workload(
    name="ring_lanes", run=_run_ring_lanes, parity="abs",
    description="heterogeneous ring lanes on a shared fixed grid, "
                "engine in {batch, scalar}; parity is the lane gate"))
register_workload(Workload(
    name="circuit_transient", run=_run_circuit_transient, parity="abs",
    description="one transient over circuit/size/backend/kernels/"
                "chord factors"))
register_workload(Workload(
    name="vsc_sweep", run=_run_vsc_sweep, parity="abs",
    description="stacked-VSC kernel bias sweep per kernel tier; "
                "parity is the kernel-parity gate"))
register_workload(Workload(
    name="mc_device", run=_run_mc_device, parity="rel",
    description="device-metric MC campaign vs the naive per-sample "
                "loop, engine in {campaign_cold, campaign_warm, "
                "naive, naive_cached}"))
register_workload(Workload(
    name="ring_adaptive", run=_run_ring_adaptive, parity="abs",
    description="adaptive engine pinned to the legacy grid vs the "
                "legacy engine; parity is the pinned-grid gate"))
register_workload(Workload(
    name="ring_accuracy", run=_run_ring_accuracy, parity="abs",
    description="waveform-accuracy/Newton-work ladder, mode in "
                "{reference, adaptive, fixed_<dt>}; parity vs the "
                "reference is each cell's waveform error"))
register_workload(Workload(
    name="circuit_dc", run=_run_circuit_dc, parity="abs",
    description="one robust DC solve per linear-solver backend; the "
                "signature carries the node voltages"))
register_workload(Workload(
    name="dc_sweep_chain", run=_run_dc_sweep_chain, parity="abs",
    description="inverter-chain supply-ramp DC sweep per backend"))
register_workload(Workload(
    name="partitioned_transient", run=_run_partitioned_transient,
    parity="abs",
    description="partitioned latency-exploiting transient vs the "
                "monolithic engine, solver in {monolithic, "
                "partitioned, partitioned_nobypass}"))
