"""Robust timing: best-of-N wall-clock measurement.

Single-shot timings wobble — a load spike during the one measured run
moves a gated speed-up by tens of percent (`FAMILY_SPEEDUP_FLOOR` had
to be re-margined once for exactly this).  The protocol here is the
project-wide fix: repeat the measurement, keep the *minimum* (the run
least disturbed by the machine), and record the full spread so a
report can show how noisy the measurement was.

The experiment runner applies the same protocol structurally — the
plan's ``repetitions`` are the repeats and reports aggregate
min-of-repetitions — while :func:`robust_time` is the inline helper
for benchmark code that times a callable directly.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.errors import ParameterError

__all__ = ["robust_time"]


def robust_time(fn: Callable[[], object], repeats: int = 3,
                warmup: int = 0) -> Dict[str, object]:
    """Time ``fn()`` ``repeats`` times; best-of-N plus the spread.

    Parameters
    ----------
    fn : callable
        Nullary callable; its return value is discarded.
    repeats : int
        Measured repetitions (>= 1).  The gated figure is the minimum.
    warmup : int
        Unmeasured calls beforehand (cache/JIT warm-up).

    Returns
    -------
    dict
        ``{"best_s": min, "median_s": median, "times_s": [...]}`` —
        ``times_s`` in execution order so reports can record the
        spread next to the gated best-of-N figure.
    """
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1: {repeats}")
    if warmup < 0:
        raise ParameterError(f"warmup must be >= 0: {warmup}")
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    ordered = sorted(times)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    return {"best_s": ordered[0], "median_s": median, "times_s": times}
