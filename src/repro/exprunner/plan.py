"""Plan expansion: config -> deterministic, ordered run table.

The plan is the Cartesian product of all factor levels (declaration
order, first factor outermost) repeated ``repetitions`` times in
**repetition-major** order: all cells of repetition 0, then all cells
of repetition 1, and so on.  Interleaving repetitions across cells is
deliberate — it is the declarative equivalent of the interleaved
timing loops the benchmarks hand-wrote, so CPU-frequency noise and
noisy neighbours bias every cell alike instead of one cell absorbing a
load spike whole.

Run ids (``r0000``, ``r0001``, ...) follow plan order and are stable
for a given config, which is what makes run directories resumable:
re-expanding the same config always maps the same (cell, repetition)
to the same id.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exprunner.config import Level, RunnerConfig

__all__ = ["RunSpec", "expand_plan", "baseline_index"]


@dataclass(frozen=True)
class RunSpec:
    """One planned run: a cell of the factor matrix plus a repetition.

    ``seed`` derives from the config's base seed and the cell's factor
    levels only — repetitions of a cell share it, so re-running a cell
    recomputes byte-identical results and the repetitions differ only
    in wall time.
    """

    index: int
    run_id: str
    cell: int
    point: Tuple[Tuple[str, Level], ...]
    repetition: int
    seed: int

    @property
    def point_dict(self) -> Dict[str, Level]:
        """Factor assignment of this run as a plain dict."""
        return dict(self.point)


def _cell_seed(base_seed: int,
               point: Tuple[Tuple[str, Level], ...]) -> int:
    """Deterministic per-cell seed from the base seed + factor levels."""
    from repro.service.fingerprint import manifest_fingerprint

    digest = manifest_fingerprint(
        {"seed": base_seed, "point": {k: v for k, v in point}})
    return int(digest[:12], 16) % (2 ** 31)


def expand_plan(config: RunnerConfig) -> List[RunSpec]:
    """Expand a config into its full, ordered run list."""
    names = config.factor_names
    level_lists = [levels for _name, levels in config.factors]
    cells = [tuple(zip(names, combo))
             for combo in itertools.product(*level_lists)]
    plan: List[RunSpec] = []
    index = 0
    for repetition in range(config.repetitions):
        for cell_index, point in enumerate(cells):
            plan.append(RunSpec(
                index=index,
                run_id=f"r{index:04d}",
                cell=cell_index,
                point=point,
                repetition=repetition,
                seed=_cell_seed(config.seed, point),
            ))
            index += 1
    return plan


def baseline_index(plan: List[RunSpec], config: RunnerConfig,
                   spec: RunSpec) -> Optional[int]:
    """Plan index of ``spec``'s baseline run (same repetition, factor
    levels overridden by the config's baseline), or ``None``.

    ``None`` when the config declares no baseline, or when ``spec``
    *is* its own baseline cell.
    """
    baseline = config.baseline_dict
    if baseline is None:
        return None
    target = tuple((name, baseline.get(name, level))
                   for name, level in spec.point)
    if target == spec.point:
        return None
    for other in plan:
        if other.repetition == spec.repetition and other.point == target:
            return other.index
    return None
