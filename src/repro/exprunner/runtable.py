"""``run_table.csv`` IO: the documented flat view of an experiment.

One row per run, fixed columns first, then one column per factor, then
one per metric.  Values are written with ``repr`` (shortest
round-tripping form) so regenerating the table from the same records
is byte-identical — the CI smoke diff depends on this.

Column dictionary (:data:`RUN_TABLE_COLUMNS`; also reproduced in
``docs/experiments.md``):

``run_id``
    Stable plan id (``r0000``...), repetition-major plan order.
``cell``
    Cell index in the factor matrix (same for all repetitions).
``repetition``
    0-based timing repetition of the cell.
``seed``
    Per-cell derived seed the workload ran under.
``status``
    ``ok`` or ``error`` (error rows keep NaN measurements and record
    the message in their raw ``record.json``).
``wall_s``
    Wall-clock seconds of the run's timed region (the engine call,
    excluding setup such as circuit construction or DC warm-up).
``newton_iterations``
    Newton iterations reported by the engine; NaN where the workload
    has no iteration counter (e.g. characterization tables).
``peak_rss_kib``
    ``ru_maxrss`` of the executing process at run end [KiB].  Peak RSS
    is monotone within a process: exact per-run when runs execute in
    fresh forked workers, an upper bound when runs share one process.
``parity``
    Max deviation of this run's signature vs the designated baseline
    cell, same repetition (abs: max |delta|; rel: max |delta|/|ref|).
    0 for the baseline cell itself; empty when no baseline is declared.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

__all__ = ["RUN_TABLE_COLUMNS", "write_run_table", "read_run_table"]

#: Fixed columns, in order, with their documented meaning.
RUN_TABLE_COLUMNS: Dict[str, str] = {
    "run_id": "stable plan id, repetition-major order",
    "cell": "cell index in the factor matrix",
    "repetition": "0-based timing repetition of the cell",
    "seed": "per-cell derived seed",
    "status": "ok | error",
    "wall_s": "wall-clock seconds of the timed engine region",
    "newton_iterations": "engine Newton iterations (NaN if unreported)",
    "peak_rss_kib": "ru_maxrss of the executing process at run end",
    "parity": "signature deviation vs the baseline cell (same rep)",
}


def _format(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def write_run_table(path, records: Sequence[Dict],
                    factor_names: Sequence[str]) -> None:
    """Write ``run_table.csv`` for ``records`` (executor record dicts).

    Columns: :data:`RUN_TABLE_COLUMNS` order, then one per factor in
    declaration order, then one per metric (union over records, first
    appearance order).  Deterministic for identical records.
    """
    metric_names: List[str] = []
    for rec in records:
        for name in rec.get("metrics") or {}:
            if name not in metric_names:
                metric_names.append(name)
    header = (list(RUN_TABLE_COLUMNS) + list(factor_names)
              + metric_names)
    lines = [",".join(header)]
    for rec in records:
        row = [_format(rec.get(column)) for column in RUN_TABLE_COLUMNS]
        point = rec.get("point") or {}
        row += [_format(point.get(name)) for name in factor_names]
        metrics = rec.get("metrics") or {}
        row += [_format(metrics.get(name)) for name in metric_names]
        lines.append(",".join(row))
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text("\n".join(lines) + "\n")
    tmp.replace(path)


def read_run_table(path) -> List[Dict[str, str]]:
    """Read ``run_table.csv`` back as a list of string-valued dicts.

    Values stay strings (the writer's ``repr`` forms); callers that
    need numbers convert the columns they use.  Analysis scripts and
    tests use this to regenerate tables without re-running anything.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        return []
    header = lines[0].split(",")
    return [dict(zip(header, line.split(",")))
            for line in lines[1:] if line]
