"""Report rendering: run records -> deterministic cell aggregates.

Aggregation follows the robust-timing protocol (see
``repro.exprunner.timing``): the gated wall-time figure for a cell is
the **minimum** over its repetitions, everything else (iterations,
metrics) is the **median** — timing noise is one-sided, metric noise
is not.  The rendered report contains no timestamps or host
identifiers, so regenerating it from the same records is
byte-identical; the CI smoke diffs two regenerations to enforce that.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.exprunner.config import RunnerConfig

__all__ = ["summarize_cells", "render_report"]


def _median(values: Sequence[float]) -> float:
    finite = sorted(v for v in values if math.isfinite(v))
    if not finite:
        return float("nan")
    mid = len(finite) // 2
    if len(finite) % 2:
        return finite[mid]
    return 0.5 * (finite[mid - 1] + finite[mid])


def _finite_min(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return min(finite) if finite else float("nan")


def _finite_max(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return max(finite) if finite else float("nan")


def summarize_cells(config: RunnerConfig,
                    records: Sequence[Dict]) -> List[Dict]:
    """Aggregate run records per cell of the factor matrix.

    Returns one dict per cell (cell-index order), each with:

    ``cell`` / ``point``
        Cell index and its factor assignment.
    ``n`` / ``n_ok``
        Records seen / records with ``status == "ok"``.
    ``wall_s_min`` / ``wall_s_median`` / ``wall_s_all``
        Best-of-N gated wall time, the median, and the full spread in
        repetition order.
    ``newton_iterations``
        Median over ok repetitions (NaN when unreported).
    ``parity_max``
        Worst signature deviation vs the baseline over repetitions
        (NaN when the config has no baseline or the cell is the
        baseline itself).
    ``metrics``
        Median per metric over ok repetitions.
    ``errors``
        Error strings of failed repetitions (empty when all ok).
    """
    by_cell: Dict[int, List[Dict]] = {}
    for rec in records:
        by_cell.setdefault(rec["cell"], []).append(rec)
    cells: List[Dict] = []
    for cell_index in sorted(by_cell):
        runs = sorted(by_cell[cell_index],
                      key=lambda r: r["repetition"])
        ok = [r for r in runs if r.get("status") == "ok"]
        walls = [float(r["wall_s"]) for r in ok]
        metric_names: List[str] = []
        for rec in ok:
            for name in rec.get("metrics") or {}:
                if name not in metric_names:
                    metric_names.append(name)
        parities = [float(r["parity"]) for r in ok
                    if r.get("parity") is not None]
        cells.append({
            "cell": cell_index,
            "point": dict(runs[0]["point"]),
            "n": len(runs),
            "n_ok": len(ok),
            "wall_s_min": _finite_min(walls),
            "wall_s_median": _median(walls),
            "wall_s_all": walls,
            "newton_iterations": _median(
                [float(r["newton_iterations"]) for r in ok]),
            "parity_max": (_finite_max(parities) if parities
                           else float("nan")),
            "metrics": {name: _median(
                [float(r["metrics"][name]) for r in ok
                 if name in (r.get("metrics") or {})])
                for name in metric_names},
            "errors": [r.get("error", "") for r in runs
                       if r.get("status") == "error"],
        })
    return cells


def render_report(config: RunnerConfig, records: Sequence[Dict],
                  pending: Optional[int] = None) -> Dict:
    """Render the experiment report dict (``report.json`` payload).

    Deterministic for identical records: no timestamps, no host info,
    cell order fixed by the factor matrix.  ``pending`` (when known)
    records how many planned runs have no record yet, so a report from
    a partial directory is visibly partial.
    """
    cells = summarize_cells(config, records)
    report = {
        "experiment": config.describe(),
        "fingerprint": config.fingerprint(),
        "runs": len(records),
        "cells": cells,
        "parity_max": _finite_max(
            [c["parity_max"] for c in cells]),
    }
    if pending is not None:
        report["pending"] = pending
        report["complete"] = pending == 0
    return report
