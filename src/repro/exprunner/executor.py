"""Experiment execution: resumable run directories + sharding.

The executor walks the expanded plan, runs each pending
:class:`~repro.exprunner.plan.RunSpec` through its workload, and
persists one raw directory per run:

``run_dir/``
    ``manifest.json``          config + fingerprint (resume guard)
    ``runs/r0007/record.json`` one raw record per run (atomic write)
    ``run_table.csv``          flat documented view (rewritten whole)
    ``report.json``            rendered report (``--report``)

Resume semantics match :class:`repro.variability.campaign.Campaign`:
re-running against an existing directory verifies the manifest
fingerprint (an edited config refuses to mix), loads every valid
``record.json``, and computes only the missing runs — deleting half
the raw dirs and re-running completes exactly the other half.
``max_runs`` bounds how many pending runs one invocation executes,
which is also how the CI smoke simulates an interrupt.

Pending runs shard over forked worker processes through
:func:`repro.parallel.fork_map`; records come back to the parent,
which does all writing (atomic temp-file + rename), so an interrupted
run never leaves a partial ``record.json`` behind.  Should a partial
or corrupt record land on disk anyway (power loss mid-rename, a full
filesystem), resume moves it to ``runs/quarantine/`` and recomputes
that run instead of crashing — see ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import faults
from repro.errors import CampaignError, ParameterError
from repro.exprunner.config import RunnerConfig
from repro.exprunner.plan import RunSpec, baseline_index, expand_plan
from repro.exprunner.runtable import write_run_table
from repro.exprunner.workloads import WORKLOADS

__all__ = ["ExperimentRunner", "ExperimentResult", "peak_rss_kib"]

_log = logging.getLogger("repro.exprunner.executor")


def peak_rss_kib() -> float:
    """Peak resident set size of this process so far [KiB].

    ``ru_maxrss`` is monotone within a process: per-run values are
    exact when runs execute in fresh forked workers and an upper bound
    when runs share one process (documented in the run-table column
    dictionary).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return float("nan")
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class ExperimentResult:
    """Executed (or partially executed) experiment: records + plan."""

    config: RunnerConfig
    records: List[Dict]
    resumed: int = 0
    computed: int = 0
    pending: int = 0
    run_dir: Optional[str] = None
    #: corrupt records moved to ``runs/quarantine/`` and recomputed
    quarantined: int = 0

    @property
    def complete(self) -> bool:
        """True when every planned run has a record."""
        return self.pending == 0

    def cells(self) -> List[Dict]:
        """Per-cell aggregates (see :func:`repro.exprunner.report
        .summarize_cells`)."""
        from repro.exprunner.report import summarize_cells

        return summarize_cells(self.config, self.records)

    def cell(self, **levels) -> Dict:
        """The aggregate of the single cell matching ``levels``.

        ``levels`` must name every factor (e.g. ``cell(engine="batch")``
        for a one-factor experiment); raises ``ParameterError`` when no
        cell or more than one cell matches.
        """
        matches = [c for c in self.cells()
                   if all(c["point"].get(k) == v
                          for k, v in levels.items())]
        if len(matches) != 1:
            raise ParameterError(
                f"cell({levels}) matched {len(matches)} cells of "
                f"{self.config.name!r}")
        return matches[0]


class ExperimentRunner:
    """Executes one :class:`RunnerConfig` against a run directory."""

    def __init__(self, config: RunnerConfig,
                 run_dir: Optional[os.PathLike] = None) -> None:
        if config.workload not in WORKLOADS:
            raise ParameterError(
                f"unknown workload {config.workload!r}; registered: "
                f"{sorted(WORKLOADS)}")
        self.config = config
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self._plan: Optional[List[RunSpec]] = None

    # -- plan ----------------------------------------------------------

    def plan(self) -> List[RunSpec]:
        """The expanded run plan (cached)."""
        if self._plan is None:
            self._plan = expand_plan(self.config)
        return self._plan

    # -- execution -----------------------------------------------------

    def run(self, resume: bool = True,
            workers: "int | str | None" = 1,
            max_runs: Optional[int] = None,
            progress=None) -> ExperimentResult:
        """Execute (or finish) the experiment.

        Parameters
        ----------
        resume : bool
            Load valid existing ``record.json`` files and compute only
            the missing runs (default).  ``False`` recomputes every
            run (existing records are overwritten).
        workers : int | str | None
            Shards pending runs over forked processes through
            :func:`repro.parallel.fork_map` (``"auto"`` honours
            ``REPRO_WORKERS``); parity and table writing stay in the
            parent.
        max_runs : int, optional
            Execute at most this many pending runs, then stop and
            persist what completed — an incremental (or interrupted)
            invocation; a later ``run(resume=True)`` picks up the
            rest.
        progress : callable, optional
            ``progress(done, total)`` after every executed run batch.
        """
        from repro.parallel import fork_map, resolve_workers

        plan = self.plan()
        runs_root = None
        quarantined = 0
        if self.run_dir is not None:
            runs_root = self.run_dir / "runs"
            runs_root.mkdir(parents=True, exist_ok=True)
            quarantined += self._check_manifest(resume)

        loaded: Dict[int, Dict] = {}
        if resume and runs_root is not None:
            for spec in plan:
                record = self._load_record(runs_root, spec)
                if record is not None:
                    loaded[spec.index] = record
                elif _quarantine_record(runs_root, spec.run_id):
                    quarantined += 1
                    _log.warning(
                        "experiment resume: quarantined corrupt record "
                        "for %s; recomputing", spec.run_id)

        pending = [spec for spec in plan if spec.index not in loaded]
        limited = pending[:max_runs] if max_runs is not None else pending
        if resolve_workers(workers) > 1 and len(limited) > 1:
            computed = fork_map(self._execute, limited, workers)
        else:
            computed = []
            for done, spec in enumerate(limited):
                computed.append(self._execute(spec))
                if progress is not None:
                    progress(done + 1, len(limited))

        for spec, record in zip(limited, computed):
            loaded[spec.index] = record
            if runs_root is not None:
                run_path = runs_root / spec.run_id
                run_path.mkdir(parents=True, exist_ok=True)
                _atomic_write_json(run_path / "record.json", record)

        records = [loaded[spec.index] for spec in plan
                   if spec.index in loaded]
        self._attach_parity(plan, loaded)
        if self.run_dir is not None and records:
            write_run_table(self.run_dir / "run_table.csv", records,
                            self.config.factor_names)
        return ExperimentResult(
            config=self.config, records=records,
            resumed=len(records) - len(limited),
            computed=len(limited),
            pending=len(plan) - len(records),
            run_dir=str(self.run_dir) if self.run_dir else None,
            quarantined=quarantined,
        )

    def load(self) -> ExperimentResult:
        """Load existing records without executing anything.

        Backs ``repro experiments --report-only``: regenerate the run
        table and report from the raw records already on disk.
        """
        if self.run_dir is None:
            raise ParameterError(
                "load() needs a run directory")
        plan = self.plan()
        runs_root = self.run_dir / "runs"
        loaded: Dict[int, Dict] = {}
        for spec in plan:
            record = self._load_record(runs_root, spec)
            if record is not None:
                loaded[spec.index] = record
        records = [loaded[spec.index] for spec in plan
                   if spec.index in loaded]
        self._attach_parity(plan, loaded)
        if records:
            write_run_table(self.run_dir / "run_table.csv", records,
                            self.config.factor_names)
        return ExperimentResult(
            config=self.config, records=records,
            resumed=len(records), computed=0,
            pending=len(plan) - len(records),
            run_dir=str(self.run_dir),
        )

    # -- internals -----------------------------------------------------

    def _execute(self, spec: RunSpec) -> Dict:
        workload = WORKLOADS[self.config.workload]
        record = {
            "run_id": spec.run_id,
            "cell": spec.cell,
            "repetition": spec.repetition,
            "seed": spec.seed,
            "point": spec.point_dict,
            "workload": self.config.workload,
            "status": "ok",
            "wall_s": float("nan"),
            "newton_iterations": float("nan"),
            "peak_rss_kib": float("nan"),
            "metrics": {},
            "signature": {},
        }
        start = time.perf_counter()
        try:
            out = workload.run(spec.point_dict,
                               self.config.params_dict, spec.seed)
        except Exception as exc:  # failure-as-data, like Campaign runs
            record["status"] = "error"
            record["error"] = f"{type(exc).__name__}: {exc}"
            record["traceback"] = traceback.format_exc()
            record["wall_s"] = time.perf_counter() - start
        else:
            record["wall_s"] = float(out["wall_s"])
            record["newton_iterations"] = float(
                out.get("newton_iterations", float("nan")))
            record["metrics"] = {k: float(v)
                                 for k, v in out.get("metrics",
                                                     {}).items()}
            record["signature"] = out.get("signature", {})
        record["peak_rss_kib"] = peak_rss_kib()
        return record

    def _attach_parity(self, plan: List[RunSpec],
                       loaded: Dict[int, Dict]) -> None:
        """Fill each loaded record's ``parity`` vs its baseline run.

        Parity is derived data (it needs the baseline cell's record),
        so it lives in the run table and report, not in the raw
        ``record.json`` written at execution time.
        """
        workload = WORKLOADS[self.config.workload]
        for spec in plan:
            record = loaded.get(spec.index)
            if record is None:
                continue
            base = baseline_index(plan, self.config, spec)
            if base is None:
                record["parity"] = (
                    0.0 if self.config.baseline is not None
                    and record["status"] == "ok" else None)
                continue
            base_record = loaded.get(base)
            if (base_record is None or record["status"] != "ok"
                    or base_record["status"] != "ok"):
                record["parity"] = float("nan")
                continue
            record["parity"] = _signature_deviation(
                record["signature"], base_record["signature"],
                workload.parity)

    def _check_manifest(self, resume: bool) -> int:
        """Verify (or write) the manifest; returns how many files were
        quarantined recovering from a corrupt manifest.

        Mirrors :meth:`repro.variability.campaign.Campaign
        ._check_manifest`: a *mismatched* fingerprint raises (different
        experiment), an *unreadable* manifest quarantines itself and
        every record — none verifiable without the fingerprint — and
        restarts fresh.
        """
        path = self.run_dir / "manifest.json"
        manifest = {"fingerprint": self.config.fingerprint(),
                    "config": self.config.describe()}
        if path.exists() and resume:
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                runs_root = self.run_dir / "runs"
                qdir = runs_root / "quarantine"
                qdir.mkdir(parents=True, exist_ok=True)
                os.replace(path, qdir / "manifest.json")
                count = 1
                for spec in self.plan():
                    count += int(_quarantine_record(runs_root,
                                                    spec.run_id))
                _log.warning(
                    "experiment resume: manifest %s unreadable; "
                    "quarantined it and %d record(s), restarting "
                    "fresh", path, count - 1)
                _atomic_write_json(path, manifest)
                return count
            if existing.get("fingerprint") != manifest["fingerprint"]:
                raise CampaignError(
                    f"run directory {self.run_dir} belongs to a "
                    f"different experiment (factors/params/seed "
                    f"changed); use a fresh directory or delete it")
        else:
            _atomic_write_json(path, manifest)
        return 0

    def _load_record(self, runs_root: Path,
                     spec: RunSpec) -> Optional[Dict]:
        """A persisted record, or ``None`` when missing/corrupt/stale
        (it is then recomputed and rewritten)."""
        path = runs_root / spec.run_id / "record.json"
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (record.get("run_id") != spec.run_id
                or record.get("point") != spec.point_dict
                or record.get("repetition") != spec.repetition):
            return None
        for key in ("wall_s", "newton_iterations", "peak_rss_kib"):
            record[key] = _parse_float(record.get(key))
        record["metrics"] = {k: _parse_float(v) for k, v in
                             (record.get("metrics") or {}).items()}
        return record


def _signature_deviation(sig: Dict, ref: Dict, mode: str) -> float:
    """Max deviation between two signatures (abs or rel mode).

    Signatures with different trace names or lengths compare as
    ``inf`` — a structural mismatch is a real parity failure, not a
    number to smooth over.
    """
    import numpy as np

    if set(sig) != set(ref):
        return float("inf")
    worst = 0.0
    for name, values in sig.items():
        a = np.asarray(values, dtype=float)
        b = np.asarray(ref[name], dtype=float)
        if a.shape != b.shape:
            return float("inf")
        if a.size == 0:
            continue
        both = np.isfinite(a) & np.isfinite(b)
        if not both.all():
            # A NaN on one side only is a mismatch; shared NaNs agree.
            if not (np.isfinite(a) == np.isfinite(b)).all():
                return float("inf")
        if not both.any():
            continue
        delta = np.abs(a[both] - b[both])
        if mode == "rel":
            scale = np.maximum(np.abs(b[both]), 1e-300)
            delta = delta / scale
        worst = max(worst, float(delta.max()) if delta.size else 0.0)
    return worst


def _quarantine_record(runs_root: Path, run_id: str) -> bool:
    """Move a corrupt ``record.json`` to ``runs/quarantine/<run_id>
    .record.json`` (atomic rename); False when there is no file."""
    path = runs_root / run_id / "record.json"
    if not path.exists():
        return False
    qdir = runs_root / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    os.replace(path, qdir / f"{run_id}.record.json")
    return True


def _atomic_write_json(path: Path, payload: Dict) -> None:
    text = json.dumps(_jsonable(payload), indent=1) + "\n"
    # Chaos seam: a FaultPlan can truncate this payload exactly as a
    # crash between write and rename would (docs/robustness.md).
    text = faults.mangle_text("persist.truncate", text)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _parse_float(value) -> float:
    """Inverse of :func:`_jsonable` for scalar measurements: loaded
    records carry ``"nan"``/``"inf"`` strings where the live ones had
    non-finite floats."""
    if value is None:
        return float("nan")
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def _jsonable(obj):
    """NaN/inf-safe copy: non-finite floats become strings so the raw
    records stay strict RFC 8259 JSON (and round-trip through
    ``_load_record`` via :func:`_parse_float`)."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return repr(obj)
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj
