"""Physical constants used throughout the CNFET models.

All constants are CODATA 2018 values in SI units unless the name says
otherwise.  Energies inside the device models are expressed in
electron-volts and voltages in volts, so the most frequently used helper
is :func:`thermal_voltage_ev`, the thermal energy ``kT`` in eV.
"""

from __future__ import annotations

import math

#: Elementary charge ``q`` [C].  Positive by convention; signs of carrier
#: charges are handled explicitly where they matter (see DESIGN.md §2).
ELEMENTARY_CHARGE = 1.602176634e-19

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Boltzmann constant [eV/K]; ``kT`` at 300 K is about 25.85 meV.
BOLTZMANN_EV = 8.617333262e-5

#: Planck constant [J*s].
PLANCK = 6.62607015e-34

#: Reduced Planck constant ``hbar`` [J*s].
HBAR = PLANCK / (2.0 * math.pi)

#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY = 8.8541878128e-12

#: Carbon-carbon bond length in graphene/CNT [m].
CC_BOND_LENGTH = 1.42e-10

#: Graphene lattice constant ``a = sqrt(3)*a_cc`` [m].
GRAPHENE_LATTICE_CONSTANT = CC_BOND_LENGTH * math.sqrt(3.0)

#: Tight-binding nearest-neighbour hopping energy ``V_pp_pi`` [eV].
#: 3.0 eV is the value used by FETToy and by Rahman et al. (2003).
HOPPING_ENERGY_EV = 3.0

#: Conductance quantum ``2 q^2 / h`` [S] (spin-degenerate single mode).
CONDUCTANCE_QUANTUM = 2.0 * ELEMENTARY_CHARGE**2 / PLANCK

#: Prefactor of the ballistic current expression ``2 q k / (pi * hbar)``
#: [A / (K)] — multiply by temperature and the difference of order-0
#: Fermi-Dirac integrals to obtain the drain current, eq. (12) of the
#: paper.
BALLISTIC_CURRENT_PREFACTOR = (
    2.0 * ELEMENTARY_CHARGE * BOLTZMANN / (math.pi * HBAR)
)


def thermal_voltage_ev(temperature_k: float) -> float:
    """Thermal energy ``kT`` in eV at ``temperature_k`` kelvin.

    Raises :class:`ValueError` for non-positive temperatures — every
    Fermi-Dirac expression downstream divides by this quantity.
    """
    if temperature_k <= 0.0:
        raise ValueError(
            f"temperature must be positive, got {temperature_k!r} K"
        )
    return BOLTZMANN_EV * temperature_k


def thermal_voltage_v(temperature_k: float) -> float:
    """Thermal voltage ``kT/q`` in volts (numerically equal to eV value)."""
    return thermal_voltage_ev(temperature_k)
