"""IV-sweep drivers and characteristic containers.

The sweep utilities work with *any* object exposing
``ids(vg, vd, vs=0.0) -> float`` — the reference model, the fast
piecewise device, or a user model — so accuracy comparisons are a
one-liner.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence

import numpy as np

from repro.errors import ParameterError


class CurrentModel(Protocol):
    """Anything that can produce a drain current at a bias point."""

    def ids(self, vg: float, vd: float, vs: float = 0.0) -> float: ...


@dataclass(frozen=True)
class IVFamily:
    """A family of output characteristics ``IDS(VDS)`` for several VG.

    ``ids[i, j]`` is the current at ``vg_values[i]``, ``vd_values[j]``.
    """

    vg_values: np.ndarray
    vd_values: np.ndarray
    ids: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        expected = (len(self.vg_values), len(self.vd_values))
        if self.ids.shape != expected:
            raise ParameterError(
                f"ids shape {self.ids.shape} != (n_vg, n_vd) {expected}"
            )

    def curve(self, vg: float) -> np.ndarray:
        """The ``IDS(VDS)`` trace for the VG closest to ``vg``."""
        idx = int(np.argmin(np.abs(self.vg_values - vg)))
        return self.ids[idx]

    @property
    def max_current(self) -> float:
        return float(np.max(self.ids))

    def to_csv(self) -> str:
        """Serialize as CSV with one row per (VG, VDS) point."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["vg", "vds", "ids"])
        for i, vg in enumerate(self.vg_values):
            for j, vd in enumerate(self.vd_values):
                writer.writerow([f"{vg:.6g}", f"{vd:.6g}",
                                 f"{self.ids[i, j]:.8e}"])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str, label: str = "") -> "IVFamily":
        """Inverse of :meth:`to_csv` (requires a full rectangular grid)."""
        rows = list(csv.reader(io.StringIO(text)))
        if not rows or rows[0] != ["vg", "vds", "ids"]:
            raise ParameterError("CSV must start with header vg,vds,ids")
        vg_list, vd_list, values = [], [], {}
        for row in rows[1:]:
            if not row:
                continue
            vg, vd, i = float(row[0]), float(row[1]), float(row[2])
            if vg not in vg_list:
                vg_list.append(vg)
            if vd not in vd_list:
                vd_list.append(vd)
            values[(vg, vd)] = i
        ids = np.empty((len(vg_list), len(vd_list)))
        try:
            for a, vg in enumerate(vg_list):
                for b, vd in enumerate(vd_list):
                    ids[a, b] = values[(vg, vd)]
        except KeyError as exc:
            raise ParameterError(f"CSV grid is not rectangular: {exc}") from exc
        return cls(np.asarray(vg_list), np.asarray(vd_list), ids, label=label)


def sweep_iv_family(
    model: CurrentModel,
    vg_values: Iterable[float],
    vd_values: Iterable[float],
    vs: float = 0.0,
    label: str = "",
    use_batch: Optional[bool] = None,
) -> IVFamily:
    """Run a full output-characteristic family on any current model.

    Models exposing ``ids_batch`` (the piecewise :class:`repro.pwl.CNFET`)
    are evaluated in one vectorized pass; anything else falls back to the
    scalar point-by-point loop.  ``use_batch=False`` forces the scalar
    loop (the benchmarks use it to measure the batch-path speed-up).
    """
    vg_arr = np.asarray(list(vg_values), dtype=float)
    vd_arr = np.asarray(list(vd_values), dtype=float)
    if vg_arr.size == 0 or vd_arr.size == 0:
        raise ParameterError("sweep grids must be non-empty")
    batch = getattr(model, "ids_batch", None) if use_batch is not False \
        else None
    if use_batch and batch is None:
        raise ParameterError(
            f"{type(model).__name__} has no ids_batch; cannot force the "
            "batch path"
        )
    if batch is not None:
        ids = np.asarray(batch(vg_arr[:, None], vd_arr[None, :], vs))
    else:
        ids = np.empty((vg_arr.size, vd_arr.size))
        for i, vg in enumerate(vg_arr):
            for j, vd in enumerate(vd_arr):
                ids[i, j] = model.ids(float(vg), float(vd), vs)
    return IVFamily(vg_arr, vd_arr, ids, label=label)


def sweep_transfer(
    model: CurrentModel,
    vg_values: Iterable[float],
    vd: float,
    vs: float = 0.0,
    use_batch: Optional[bool] = None,
) -> np.ndarray:
    """Transfer characteristic ``IDS(VG)`` at fixed drain bias.

    Batched for models exposing ``ids_batch`` (same ``use_batch``
    semantics as :func:`sweep_iv_family`, including the error on
    forcing the batch path for a scalar-only model).
    """
    vg_arr = np.asarray(list(vg_values), dtype=float)
    batch = getattr(model, "ids_batch", None) if use_batch is not False \
        else None
    if use_batch and batch is None:
        raise ParameterError(
            f"{type(model).__name__} has no ids_batch; cannot force the "
            "batch path"
        )
    if batch is not None:
        return np.asarray(batch(vg_arr, vd, vs), dtype=float)
    return np.asarray(
        [model.ids(float(vg), vd, vs) for vg in vg_arr], dtype=float
    )


def linspace_sweep(start: float, stop: float, points: int) -> Sequence[float]:
    """Inclusive linear sweep helper mirroring SPICE ``.dc`` semantics."""
    if points < 2:
        raise ParameterError(f"a sweep needs >= 2 points: {points!r}")
    return np.linspace(start, stop, points).tolist()
