"""Reference (baseline) implementation of the ballistic CNFET theory.

``repro.reference.fettoy`` is a from-scratch Python equivalent of the
nanoHUB FETToy MATLAB script: it solves the self-consistent-voltage
equation with safeguarded Newton-Raphson, re-evaluating the
Fermi-Dirac/DOS charge integrals at every iteration.  It is the accuracy
and speed baseline that the piecewise models in :mod:`repro.pwl` are
measured against.
"""

from repro.reference.fettoy import FETToyModel, FETToyParameters
from repro.reference.solver import brent, newton_raphson
from repro.reference.sweep import IVFamily, sweep_iv_family

__all__ = [
    "FETToyModel",
    "FETToyParameters",
    "newton_raphson",
    "brent",
    "IVFamily",
    "sweep_iv_family",
]
