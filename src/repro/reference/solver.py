"""Scalar root solvers used by the reference model.

The self-consistent-voltage residual is smooth and strictly monotone
(DESIGN.md §2), so a safeguarded Newton-Raphson is the workhorse; a
from-scratch Brent implementation is provided both as a fallback and as
an independently testable substrate component.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import ConvergenceError, ParameterError


def newton_raphson(
    func: Callable[[float], float],
    dfunc: Callable[[float], float],
    x0: float,
    *,
    xtol: float = 1e-12,
    ftol: float = 0.0,
    max_iter: int = 100,
    bracket: Optional[Tuple[float, float]] = None,
) -> Tuple[float, int]:
    """Newton-Raphson with optional bisection safeguard.

    Parameters
    ----------
    func, dfunc:
        Residual and its derivative.
    x0:
        Initial guess.
    xtol, ftol:
        Convergence on step size and/or residual magnitude.
    bracket:
        Optional ``(lo, hi)`` interval known to contain the root.  When
        given, any Newton step leaving the interval is replaced by
        bisection and the bracket is updated from the sign of the
        residual, which makes the iteration globally convergent for
        monotone residuals.

    Returns
    -------
    (root, iterations)

    Raises
    ------
    ConvergenceError
        If ``max_iter`` is exhausted.
    """
    if max_iter < 1:
        raise ParameterError(f"max_iter must be >= 1: {max_iter!r}")
    lo = hi = None
    flo = None
    if bracket is not None:
        lo, hi = (float(bracket[0]), float(bracket[1]))
        if lo > hi:
            lo, hi = hi, lo
        flo = func(lo)
        fhi = func(hi)
        if flo == 0.0:
            return lo, 0
        if fhi == 0.0:
            return hi, 0
        if flo * fhi > 0.0:
            raise ParameterError(
                f"bracket [{lo}, {hi}] does not straddle a root "
                f"(f(lo)={flo:.3e}, f(hi)={fhi:.3e})"
            )
        x0 = min(max(x0, lo), hi)

    x = float(x0)
    fx = func(x)
    for iteration in range(1, max_iter + 1):
        if abs(fx) <= ftol:
            return x, iteration - 1
        if lo is not None:
            # Tighten the bracket with the current iterate so a rejected
            # Newton step bisects a strictly smaller interval.
            if flo * fx <= 0.0:
                hi = x
            else:
                lo, flo = x, fx
        dfx = dfunc(x)
        if dfx != 0.0:
            step = fx / dfx
            x_new = x - step
        else:
            x_new = None
        inside = (
            x_new is not None
            and (lo is None or (lo <= x_new <= hi))
        )
        if not inside:
            if lo is None:
                raise ConvergenceError(
                    "Newton step failed (zero derivative) and no bracket "
                    "to bisect",
                    iterations=iteration, residual=abs(fx),
                )
            x_new = 0.5 * (lo + hi)
        f_new = func(x_new)
        if lo is not None:
            # Maintain the bracket from residual signs.
            if flo * f_new <= 0.0:
                hi = x_new
            else:
                lo, flo = x_new, f_new
        if abs(x_new - x) <= xtol * max(1.0, abs(x_new)):
            return x_new, iteration
        x, fx = x_new, f_new
    raise ConvergenceError(
        f"Newton-Raphson did not converge in {max_iter} iterations",
        iterations=max_iter, residual=abs(fx),
    )


def bisection(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    xtol: float = 1e-12,
    max_iter: int = 200,
) -> Tuple[float, int]:
    """Plain bisection on a sign-changing interval."""
    flo, fhi = func(lo), func(hi)
    if flo == 0.0:
        return lo, 0
    if fhi == 0.0:
        return hi, 0
    if flo * fhi > 0.0:
        raise ParameterError(
            f"bisection interval [{lo}, {hi}] has no sign change"
        )
    for iteration in range(1, max_iter + 1):
        mid = 0.5 * (lo + hi)
        fmid = func(mid)
        if fmid == 0.0 or (hi - lo) <= xtol * max(1.0, abs(mid)):
            return mid, iteration
        if flo * fmid < 0.0:
            hi = mid
        else:
            lo, flo = mid, fmid
    raise ConvergenceError(
        f"bisection did not converge in {max_iter} iterations",
        iterations=max_iter,
    )


def brent(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    xtol: float = 1e-13,
    max_iter: int = 200,
) -> Tuple[float, int]:
    """Brent's method (inverse quadratic interpolation + secant +
    bisection) on a bracketing interval.

    Classic Brent-Dekker bookkeeping; converges superlinearly on smooth
    residuals while never leaving the bracket.
    """
    a, b = float(lo), float(hi)
    fa, fb = func(a), func(b)
    if fa == 0.0:
        return a, 0
    if fb == 0.0:
        return b, 0
    if fa * fb > 0.0:
        raise ParameterError(f"brent interval [{lo}, {hi}] has no sign change")
    if abs(fa) < abs(fb):
        a, b, fa, fb = b, a, fb, fa
    c, fc = a, fa
    mflag = True
    d = 0.0
    for iteration in range(1, max_iter + 1):
        if fb == 0.0 or abs(b - a) <= xtol * max(1.0, abs(b)):
            return b, iteration
        if fa != fc and fb != fc:
            # Inverse quadratic interpolation.
            s = (
                a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
            )
        else:
            # Secant.
            s = b - fb * (b - a) / (fb - fa)
        cond_range = not (min((3 * a + b) / 4, b) < s < max((3 * a + b) / 4, b))
        cond_mflag = mflag and abs(s - b) >= abs(b - c) / 2
        cond_dflag = not mflag and abs(s - b) >= abs(c - d) / 2
        cond_btol = mflag and abs(b - c) < xtol
        cond_dtol = not mflag and abs(c - d) < xtol
        if cond_range or cond_mflag or cond_dflag or cond_btol or cond_dtol:
            s = 0.5 * (a + b)
            mflag = True
        else:
            mflag = False
        fs = func(s)
        d, c, fc = c, b, fb
        if fa * fs < 0.0:
            b, fb = s, fs
        else:
            a, fa = s, fs
        if abs(fa) < abs(fb):
            a, b, fa, fb = b, a, fb, fa
    raise ConvergenceError(
        f"Brent did not converge in {max_iter} iterations",
        iterations=max_iter,
    )


def expand_bracket(
    func: Callable[[float], float],
    x0: float,
    *,
    initial_width: float = 0.1,
    growth: float = 2.0,
    max_expansions: int = 60,
) -> Tuple[float, float]:
    """Grow an interval around ``x0`` until the residual changes sign.

    Suitable for monotone residuals where a sign change is guaranteed to
    exist somewhere on the real line.
    """
    width = initial_width
    lo, hi = x0 - width, x0 + width
    flo, fhi = func(lo), func(hi)
    for _ in range(max_expansions):
        if flo == 0.0:
            return lo, lo
        if fhi == 0.0:
            return hi, hi
        if flo * fhi < 0.0:
            return lo, hi
        width *= growth
        lo, hi = x0 - width, x0 + width
        flo, fhi = func(lo), func(hi)
    raise ConvergenceError(
        f"could not bracket a root around {x0} after "
        f"{max_expansions} expansions"
    )
