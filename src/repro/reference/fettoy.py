"""FETToy-equivalent reference model of the ballistic CNFET.

This is the baseline the paper compares against: the top-of-the-barrier
ballistic theory of Rahman, Guo, Datta and Lundstrom (2003) solved with
full numerics —

1. for each bias point, solve the self-consistent-voltage equation

   ``CSum * VSC + Qt - QS(VSC) - QD(VSC) = 0``

   by safeguarded Newton-Raphson, where each residual evaluation
   integrates the DOS against the Fermi function (two quadratures per
   iteration, as in the MATLAB script);
2. evaluate the drain current from the closed-form order-0 Fermi-Dirac
   integral (eq. (12)/(14) of the paper).

The residual is strictly monotone in ``VSC`` (slope
``CSum + |QS'| + |QD'|``), so the solve is globally convergent once a
sign-changing bracket is found.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import BALLISTIC_CURRENT_PREFACTOR, thermal_voltage_ev
from repro.errors import ParameterError
from repro.physics.bandstructure import Chirality, NanotubeBands
from repro.physics.capacitance import (
    TerminalCapacitances,
    backgate_capacitance,
    coaxial_gate_capacitance,
)
from repro.physics.charge import ChargeModel
from repro.physics.fermi import fermi_dirac_integral_0
from repro.reference.solver import expand_bracket, newton_raphson


@dataclass(frozen=True)
class FETToyParameters:
    """Device and numerical parameters of the reference model.

    Defaults reproduce FETToy's stock CNT device: a (13, 0) tube
    (d ≈ 1.02 nm), 1.5 nm ZrO2-class coaxial gate oxide, 300 K,
    ``EF = -0.32 eV``, ``alpha_G = 0.88``, ``alpha_D = 0.035``.
    """

    diameter_nm: float = 1.0
    tox_nm: float = 1.5
    kappa: float = 3.9
    temperature_k: float = 300.0
    fermi_level_ev: float = -0.32
    alpha_g: float = 0.88
    alpha_d: float = 0.035
    gate_geometry: str = "coaxial"
    n_subbands: int = 1
    #: optional channel transmission in (0, 1]; 1 = fully ballistic
    transmission: float = 1.0
    #: quadrature order of the charge integrals
    nodes: int = 200
    #: explicit chirality; when given it overrides ``diameter_nm``
    chirality: Optional[Tuple[int, int]] = field(default=None)

    def __post_init__(self) -> None:
        if self.gate_geometry not in ("coaxial", "backgate"):
            raise ParameterError(
                f"gate_geometry must be 'coaxial' or 'backgate': "
                f"{self.gate_geometry!r}"
            )
        if not 0.0 < self.transmission <= 1.0:
            raise ParameterError(
                f"transmission must be in (0, 1]: {self.transmission!r}"
            )
        if self.n_subbands < 1:
            raise ParameterError(
                f"n_subbands must be >= 1: {self.n_subbands!r}"
            )

    def resolve_chirality(self) -> Chirality:
        if self.chirality is not None:
            return Chirality(*self.chirality)
        return Chirality.from_diameter(self.diameter_nm)

    def with_updates(self, **kwargs) -> "FETToyParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def terminal_capacitances(params: FETToyParameters,
                          diameter_nm: float) -> TerminalCapacitances:
    """Terminal capacitances of a device (closed forms, no quadrature).

    Split out of :class:`FETToyModel` so the fast device can build its
    equivalent circuit without paying for the charge-model setup when a
    fitted charge comes from the cache.
    """
    if params.gate_geometry == "coaxial":
        c_ins = coaxial_gate_capacitance(
            diameter_nm, params.tox_nm, params.kappa
        )
    else:
        c_ins = backgate_capacitance(
            diameter_nm, params.tox_nm, params.kappa
        )
    return TerminalCapacitances.from_alphas(
        c_ins, params.alpha_g, params.alpha_d
    )


class FETToyModel:
    """Reference ballistic CNFET (see module docstring).

    The public surface mirrors what the fast model exposes so the two
    are interchangeable in sweeps and in the circuit engine:
    :meth:`solve_vsc`, :meth:`ids`, :meth:`iv_family`, plus access to the
    theoretical charge curves for the fitter.
    """

    def __init__(self, params: FETToyParameters = FETToyParameters()) -> None:
        self.params = params
        chirality = params.resolve_chirality()
        self.bands = NanotubeBands(chirality)
        minima = self.bands.half_gaps(
            min(params.n_subbands, len(self.bands.subband_minima_ev))
        )
        self.charge = ChargeModel(
            minima,
            params.temperature_k,
            params.fermi_level_ev,
            nodes=params.nodes,
        )
        self.capacitances = terminal_capacitances(
            params, self.bands.diameter_nm
        )
        self.kt_ev = thermal_voltage_ev(params.temperature_k)
        #: Newton iteration counter, cumulative (exposed for speed studies)
        self.newton_iterations = 0

    # ------------------------------------------------------------------
    # Self-consistent voltage
    # ------------------------------------------------------------------

    def vsc_residual(self, vsc: float, vg: float, vd: float,
                     vs: float = 0.0) -> float:
        """``g(VSC) = CSum VSC + Qt - QS(VSC) - QD(VSC)`` [C/m]."""
        caps = self.capacitances
        qt = caps.terminal_charge(vg, vd, vs)
        vds = vd - vs
        return (
            caps.csum * vsc
            + qt
            - float(self.charge.qs(vsc))
            - float(self.charge.qd(vsc, vds))
        )

    def vsc_residual_derivative(self, vsc: float, vg: float, vd: float,
                                vs: float = 0.0) -> float:
        """``g'(VSC) = CSum - QS' - QD' > 0`` — strict monotonicity."""
        vds = vd - vs
        caps = self.capacitances
        return (
            caps.csum
            - float(self.charge.dqs_dvsc(vsc))
            - float(self.charge.dqs_dvsc(vsc + vds))
        )

    def solve_vsc(self, vg: float, vd: float, vs: float = 0.0,
                  xtol: float = 1e-10) -> float:
        """Solve the self-consistent voltage by safeguarded Newton.

        The top-of-the-barrier equations are written for a grounded
        source, so terminal voltages are converted to source-referenced
        values first (``VSC`` is returned source-referenced as well).
        Starts from the charge-free estimate ``VSC0 = -Qt/CSum`` and
        expands a bracket around it (the residual is monotone, so a
        bracket always exists).
        """
        vg, vd, vs = vg - vs, vd - vs, 0.0
        caps = self.capacitances
        qt = caps.terminal_charge(vg, vd, vs)
        x0 = -qt / caps.csum

        def g(v: float) -> float:
            return self.vsc_residual(v, vg, vd, vs)

        def dg(v: float) -> float:
            return self.vsc_residual_derivative(v, vg, vd, vs)

        lo, hi = expand_bracket(g, x0, initial_width=0.2)
        if lo == hi:
            return lo
        root, iters = newton_raphson(
            g, dg, 0.5 * (lo + hi), xtol=xtol, bracket=(lo, hi)
        )
        self.newton_iterations += iters
        return root

    # ------------------------------------------------------------------
    # Drain current
    # ------------------------------------------------------------------

    def ids_at_vsc(self, vsc: float, vds: float) -> float:
        """Drain current given a known ``VSC`` (eq. (14)) [A].

        ``IDS = (2 q k T / pi hbar) [F0((EF - q VSC)/kT)
                                     - F0((EF - q VSC - q VDS)/kT)]``
        scaled by the channel transmission (1 in the ballistic limit).
        """
        ef = self.params.fermi_level_ev
        kt = self.kt_ev
        eta_s = (ef - vsc) / kt
        eta_d = (ef - vsc - vds) / kt
        current = (
            BALLISTIC_CURRENT_PREFACTOR
            * self.params.temperature_k
            * (fermi_dirac_integral_0(eta_s) - fermi_dirac_integral_0(eta_d))
        )
        return self.params.transmission * current

    def ids(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """Drain current at a terminal bias point [A]."""
        vsc = self.solve_vsc(vg, vd, vs)
        return self.ids_at_vsc(vsc, vd - vs)

    def operating_point(self, vg: float, vd: float,
                        vs: float = 0.0) -> Tuple[float, float]:
        """``(IDS, VSC)`` at a bias point."""
        vsc = self.solve_vsc(vg, vd, vs)
        return self.ids_at_vsc(vsc, vd - vs), vsc

    def iv_family(self, vg_values: Sequence[float],
                  vd_values: Sequence[float]) -> np.ndarray:
        """Drain-current family ``IDS[i_vg, i_vd]`` [A]."""
        vg_arr = np.asarray(vg_values, dtype=float)
        vd_arr = np.asarray(vd_values, dtype=float)
        out = np.empty((vg_arr.size, vd_arr.size))
        for i, vg in enumerate(vg_arr):
            for j, vd in enumerate(vd_arr):
                out[i, j] = self.ids(vg, vd)
        return out

    # ------------------------------------------------------------------
    # Theoretical charge curves (consumed by the piecewise fitter)
    # ------------------------------------------------------------------

    def charge_curve(self, vsc_values: Sequence[float],
                     vds: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """``(QS, QD)`` along a VSC axis [C/m]."""
        vsc = np.asarray(vsc_values, dtype=float)
        return (
            np.asarray(self.charge.qs(vsc), dtype=float),
            np.asarray(self.charge.qd(vsc, vds), dtype=float),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"FETToyModel(d={self.bands.diameter_nm:.2f} nm, "
            f"T={p.temperature_k} K, EF={p.fermi_level_ev} eV, "
            f"{p.gate_geometry})"
        )
