"""repro — circuit-level ballistic CNFET modelling.

Reproduction of Kazmierski, Zhou & Al-Hashimi, *Efficient circuit-level
modelling of ballistic CNT using piecewise non-linear approximation of
mobile charge density*, DATE 2008.

Public entry points
-------------------
``repro.reference.FETToyModel``
    Full-numerics baseline (Newton-Raphson + Fermi/DOS integration).
``repro.pwl.CNFET``
    The paper's fast device: piecewise-polynomial charge, closed-form
    self-consistent voltage.
``repro.circuit``
    SPICE-like MNA engine with a CNFET element.
``repro.experiments``
    Runners that regenerate every table and figure of the paper.
``repro.variability``
    Monte-Carlo campaign engine: parameter distributions, corner
    presets, seeded samplers, resumable run tables and circuit-level
    statistics (the ``mc`` CLI subcommand).
``repro.characterize``
    Standard-cell style gate characterization: delay/slew/energy
    lookup tables over load x slew grids (the ``characterize`` CLI
    subcommand).

The documentation set under ``docs/`` (start at ``docs/index.md``)
covers each subsystem in depth.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
