"""Public CNFET device built on the piecewise charge approximation.

:class:`CNFET` is the user-facing object: construct it from device
parameters (same dataclass as the reference model, so the two are
interchangeable), pick ``model="model1"`` or ``"model2"`` (or pass a
custom :class:`~repro.pwl.fitting.FitSpec`), and evaluate currents —
each bias point costs a closed-form polynomial solve plus two
logarithms.

The device also exposes small-signal quantities (gm, gds) and terminal
charges (for the transient companion models of the circuit engine),
matching the equivalent circuit of the paper's Fig. 1: linear
capacitances CG/CD/CS from the terminals to the inner node Σ plus the
non-linear mobile charges QS, QD at Σ.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.constants import BALLISTIC_CURRENT_PREFACTOR, thermal_voltage_ev
from repro.errors import ParameterError
from repro.pwl.fitting import FitSpec, FittedCharge, fit_piecewise_charge
from repro.pwl.model1 import MODEL1_SPEC
from repro.pwl.model2 import MODEL2_SPEC
from repro.physics.bandstructure import NanotubeBands
from repro.pwl.selfconsistent import ClosedFormSolver
from repro.reference.fettoy import (
    FETToyModel,
    FETToyParameters,
    terminal_capacitances,
)

_NAMED_SPECS = {"model1": MODEL1_SPEC, "model2": MODEL2_SPEC}

# ----------------------------------------------------------------------
# Module-level fit cache
#
# Fitting a charge curve costs tens of milliseconds (it samples the
# theoretical model hundreds of times and optionally optimises the
# region boundaries); evaluating a fitted device costs microseconds.
# Monte-Carlo campaigns construct thousands of near-identical devices,
# so fitted charges are memoised on the parameters the fit actually
# depends on: the resolved chirality (diameter is snapped to a discrete
# tube anyway), temperature, and the subband/quadrature/spec settings.
# Gate geometry and oxide parameters only enter the capacitances, which
# are recomputed exactly per device.
#
# The Fermi level is deliberately NOT part of the key: the theoretical
# charge is ``QS(V; EF) = q (h(EF - V) - h(EF))`` with the half-density
# ``h`` independent of EF (see ``ChargeModel``), and the fit spec's
# window, boundaries and weighting are all EF-relative — so the fit at
# ``EF'`` equals the fit at ``EF`` shifted by ``EF' - EF`` along the
# VSC axis plus the constant ``q (h(EF) - h(EF'))`` from the
# equilibrium term.  Both pieces are applied exactly (the anchor's
# charge model is kept alive to price the constant), which makes one
# fit serve every Fermi level of a tube/temperature combination to
# boundary-optimiser tolerance (~1e-6 of the charge peak).
# ----------------------------------------------------------------------

#: key -> (fitted at anchor EF, anchor charge model)
_FIT_CACHE: "OrderedDict[Tuple, Tuple[FittedCharge, object]]" = OrderedDict()
_FIT_CACHE_MAX = 256
_FIT_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def _fit_cache_key(params: FETToyParameters, spec: FitSpec,
                   optimize_boundaries: bool) -> Tuple:
    chirality = params.resolve_chirality()
    return (
        chirality.n, chirality.m,
        round(params.temperature_k, 9),
        params.n_subbands, params.nodes,
        spec, bool(optimize_boundaries),
    )


def _shift_fitted(fitted: FittedCharge, charge_model,
                  fermi_level_ev: float) -> FittedCharge:
    """The fit re-anchored at another Fermi level (exact EF covariance:
    a VSC shift plus the equilibrium-density constant)."""
    ef0 = fitted.fermi_level_ev
    delta = fermi_level_ev - ef0
    if delta == 0.0:
        return fitted
    from repro.constants import ELEMENTARY_CHARGE

    dq = ELEMENTARY_CHARGE * (
        float(charge_model.half_density(ef0))
        - float(charge_model.half_density(fermi_level_ev))
    )
    return dataclasses.replace(
        fitted,
        curve=fitted.curve.shifted(-delta).with_offset(dq),
        fermi_level_ev=fermi_level_ev,
        boundaries_abs=tuple(b + delta for b in fitted.boundaries_abs),
    )


def fit_cache_info() -> Dict[str, int]:
    """``{"hits", "misses", "size"}`` counters of the shared fit cache."""
    return {**_FIT_CACHE_STATS, "size": len(_FIT_CACHE)}


def clear_fit_cache() -> None:
    """Drop all memoised fits and reset the hit/miss counters."""
    _FIT_CACHE.clear()
    _FIT_CACHE_STATS["hits"] = 0
    _FIT_CACHE_STATS["misses"] = 0


class CNFET:
    """Fast ballistic CNFET using the piecewise charge approximation.

    Parameters
    ----------
    params:
        Physical device parameters (shared with the reference model).
    model:
        ``"model1"``, ``"model2"`` or a custom :class:`FitSpec`.
    optimize_boundaries:
        Refine region boundaries numerically during fitting.
    fitted:
        Skip fitting and use a pre-computed :class:`FittedCharge`
        (e.g. from :mod:`repro.pwl.tables`).
    use_fit_cache:
        Reuse fitted charges from the module-level memo (default).
        Constructing the same device twice never refits; pass ``False``
        to force a fresh fit (benchmarking, cache-bypass tests).
    polarity:
        ``"n"`` (default) or ``"p"``.  A p-type device mirrors terminal
        voltages (``IDS_p(VG, VD) = -IDS_n(-VG, -VD)``) — a standard
        circuit-level convenience for complementary logic, documented as
        an extension beyond the paper's n-type measurements.

    Notes
    -----
    Construction runs the *theoretical* model once to sample the charge
    curve and fit it (~tens of ms); evaluations afterwards never touch
    the physics again, which is the paper's amortisation argument for
    SPICE-class simulators.
    """

    def __init__(
        self,
        params: FETToyParameters = FETToyParameters(),
        model: Union[str, FitSpec] = "model2",
        optimize_boundaries: bool = True,
        fitted: Optional[FittedCharge] = None,
        polarity: str = "n",
        use_fit_cache: bool = True,
    ) -> None:
        if polarity not in ("n", "p"):
            raise ParameterError(f"polarity must be 'n' or 'p': {polarity!r}")
        self.params = params
        self.polarity = polarity
        # The reference model (charge quadrature setup) is built lazily:
        # on a fit-cache hit only the band structure and the closed-form
        # capacitances are needed, which keeps cached construction ~10x
        # cheaper than the full theoretical-model setup.
        self._reference: Optional[FETToyModel] = None
        self.bands = NanotubeBands(params.resolve_chirality())
        self.capacitances = terminal_capacitances(
            params, self.bands.diameter_nm
        )
        if fitted is None:
            if isinstance(model, str):
                try:
                    spec = _NAMED_SPECS[model]
                except KeyError:
                    raise ParameterError(
                        f"unknown model {model!r}; expected one of "
                        f"{sorted(_NAMED_SPECS)} or a FitSpec"
                    ) from None
            else:
                spec = model
            key = _fit_cache_key(params, spec, optimize_boundaries)
            entry = _FIT_CACHE.get(key) if use_fit_cache else None
            if entry is None:
                _FIT_CACHE_STATS["misses"] += 1
                fitted = fit_piecewise_charge(
                    self.reference.charge, spec,
                    optimize_boundaries=optimize_boundaries,
                )
                if use_fit_cache:
                    _FIT_CACHE[key] = (fitted, self.reference.charge)
                    if len(_FIT_CACHE) > _FIT_CACHE_MAX:
                        _FIT_CACHE.popitem(last=False)
            else:
                _FIT_CACHE_STATS["hits"] += 1
                _FIT_CACHE.move_to_end(key)
                fitted = _shift_fitted(entry[0], entry[1],
                                       params.fermi_level_ev)
        self.fitted = fitted
        self.solver = ClosedFormSolver(fitted.curve, self.capacitances)
        self._kt = thermal_voltage_ev(params.temperature_k)
        self._ef = params.fermi_level_ev
        self._i_prefactor = (
            BALLISTIC_CURRENT_PREFACTOR * params.temperature_k
            * params.transmission
        )

    # ------------------------------------------------------------------
    # Core evaluations
    # ------------------------------------------------------------------

    @property
    def reference(self) -> FETToyModel:
        """The full-numerics theoretical model (built on first access)."""
        if self._reference is None:
            self._reference = FETToyModel(self.params)
        return self._reference

    @property
    def model_name(self) -> str:
        """Name of the fitted piecewise spec (model1/model2/custom)."""
        return self.fitted.spec.name

    def vsc(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """Self-consistent voltage [V], source-referenced — closed form,
        no iteration."""
        if self.polarity == "p":
            return -self.solver.solve(-(vg - vs), -(vd - vs), 0.0)
        return self.solver.solve(vg - vs, vd - vs, 0.0)

    def ids_at_vsc(self, vsc: float, vds: float) -> float:
        """Drain current given VSC (paper eq. (14)) [A]."""
        kt = self._kt
        eta_s = (self._ef - vsc) / kt
        eta_d = eta_s - vds / kt
        return self._i_prefactor * (_log1pexp(eta_s) - _log1pexp(eta_d))

    def ids(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """Drain current at a terminal bias point [A].

        For p-type devices the mirrored current is returned so that the
        device conducts for negative gate drive, as expected in
        complementary logic.
        """
        if self.polarity == "p":
            return -self._ids_n(-vg, -vd, -vs)
        return self._ids_n(vg, vd, vs)

    def _ids_n(self, vg: float, vd: float, vs: float) -> float:
        vsc = self.solver.solve(vg - vs, vd - vs, 0.0)
        return self.ids_at_vsc(vsc, vd - vs)

    def operating_point(self, vg: float, vd: float,
                        vs: float = 0.0) -> Tuple[float, float]:
        """``(IDS, VSC)`` at a bias point (VSC source-referenced)."""
        vsc = self.vsc(vg, vd, vs)
        if self.polarity == "p":
            return self.ids(vg, vd, vs), vsc
        return self.ids_at_vsc(vsc, vd - vs), vsc

    def iv_family(self, vg_values: Sequence[float],
                  vd_values: Sequence[float]) -> np.ndarray:
        """Drain-current family ``IDS[i_vg, i_vd]`` [A] — batched."""
        vg_arr = np.asarray(vg_values, dtype=float)
        vd_arr = np.asarray(vd_values, dtype=float)
        return self.ids_batch(vg_arr[:, None], vd_arr[None, :])

    # ------------------------------------------------------------------
    # Batched evaluations (one numpy pass over arrays of bias points;
    # per-lane arithmetic mirrors the scalar methods, so results agree
    # with a loop of scalar calls to floating noise)
    # ------------------------------------------------------------------

    def vsc_batch(self, vg, vd, vs=0.0) -> np.ndarray:
        """Batched :meth:`vsc`; inputs broadcast against each other."""
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        if self.polarity == "p":
            return -self.solver.solve_many(-(vg - vs), -(vd - vs), 0.0)
        return self.solver.solve_many(vg - vs, vd - vs, 0.0)

    def ids_batch(self, vg, vd, vs=0.0) -> np.ndarray:
        """Batched :meth:`ids`; inputs broadcast against each other."""
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        if self.polarity == "p":
            return -self._ids_n_batch(-vg, -vd, -vs)
        return self._ids_n_batch(vg, vd, vs)

    def _ids_n_batch(self, vg, vd, vs) -> np.ndarray:
        vds = vd - vs
        vsc = self.solver.solve_many(vg - vs, vds, 0.0)
        kt = self._kt
        eta_s = (self._ef - vsc) / kt
        eta_d = eta_s - vds / kt
        return self._i_prefactor * (
            _log1pexp_many(eta_s) - _log1pexp_many(eta_d)
        )

    # ------------------------------------------------------------------
    # Small-signal parameters (central differences on the fast model)
    # ------------------------------------------------------------------

    def gm(self, vg: float, vd: float, vs: float = 0.0,
           delta: float = 1e-4) -> float:
        """Transconductance ``dIDS/dVG`` [S]."""
        return (
            self.ids(vg + delta, vd, vs) - self.ids(vg - delta, vd, vs)
        ) / (2.0 * delta)

    def gds(self, vg: float, vd: float, vs: float = 0.0,
            delta: float = 1e-4) -> float:
        """Output conductance ``dIDS/dVD`` [S]."""
        return (
            self.ids(vg, vd + delta, vs) - self.ids(vg, vd - delta, vs)
        ) / (2.0 * delta)

    def gm_batch(self, vg, vd, vs=0.0, delta: float = 1e-4) -> np.ndarray:
        """Batched :meth:`gm` (same central difference)."""
        vg = np.asarray(vg, dtype=float)
        return (
            self.ids_batch(vg + delta, vd, vs)
            - self.ids_batch(vg - delta, vd, vs)
        ) / (2.0 * delta)

    def gds_batch(self, vg, vd, vs=0.0, delta: float = 1e-4) -> np.ndarray:
        """Batched :meth:`gds` (same central difference)."""
        vd = np.asarray(vd, dtype=float)
        return (
            self.ids_batch(vg, vd + delta, vs)
            - self.ids_batch(vg, vd - delta, vs)
        ) / (2.0 * delta)

    # ------------------------------------------------------------------
    # Charges (per metre; multiply by an effective length for a discrete
    # device — the circuit element handles that scaling)
    # ------------------------------------------------------------------

    def terminal_charges(self, vg: float, vd: float,
                         vs: float = 0.0) -> Tuple[float, float, float]:
        """Charges at (G, D, S) [C/m] per the Fig. 1 equivalent circuit.

        Gate: ``CG (VG - VSC)``.  Drain: ``CD (VD - VSC)`` plus the
        mobile drain charge ``-QD`` (electrons supplied by the drain
        contact); source analogously.  The inner node carries the
        balancing charge, which is how the self-consistent equation was
        derived in the first place.
        """
        sign = 1.0
        if self.polarity == "p":
            vg, vd, vs = -vg, -vd, -vs
            sign = -1.0
        vgs, vds = vg - vs, vd - vs
        vsc = self.solver.solve(vgs, vds, 0.0)
        caps = self.capacitances
        qs_mobile = float(self.fitted.curve.value(vsc))
        qd_mobile = float(self.fitted.curve.value(vsc + vds))
        # Inner-node potential is -VSC (see DESIGN.md §2), so the plate
        # charges are C * (terminal + VSC).
        qg = caps.cg * (vgs + vsc)
        qd = caps.cd * (vds + vsc) - qd_mobile
        qs = caps.cs * vsc - qs_mobile
        return sign * qg, sign * qd, sign * qs

    def terminal_charges_batch(self, vg, vd, vs=0.0
                               ) -> Tuple[np.ndarray, np.ndarray,
                                          np.ndarray]:
        """Batched :meth:`terminal_charges`; inputs broadcast."""
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        sign = 1.0
        if self.polarity == "p":
            vg, vd, vs = -vg, -vd, -vs
            sign = -1.0
        vgs, vds = vg - vs, vd - vs
        vsc = self.solver.solve_many(vgs, vds, 0.0)
        caps = self.capacitances
        qs_mobile = self.fitted.curve.value(vsc)
        qd_mobile = self.fitted.curve.value(vsc + vds)
        qg = caps.cg * (vgs + vsc)
        qd = caps.cd * (vds + vsc) - qd_mobile
        qs = caps.cs * vsc - qs_mobile
        return sign * qg, sign * qd, sign * qs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"CNFET({self.model_name}, {self.polarity}-type, "
            f"d={self.bands.diameter_nm:.2f} nm, "
            f"T={p.temperature_k} K, EF={p.fermi_level_ev} eV)"
        )


def _log1pexp(x: float) -> float:
    """Stable ``log(1 + exp(x))`` for scalar floats (hot path)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _log1pexp_many(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`_log1pexp` (same branch thresholds)."""
    e = np.exp(np.minimum(x, 35.0))
    return np.where(x > 35.0, x, np.where(x < -35.0, e, np.log1p(e)))
