"""Vectorized closed-form root finding (the batch twin of
:mod:`repro.pwl.polynomials`).

Two layers:

* :func:`real_roots_batch` — the generic mirror of ``real_roots``: same
  degree-reduction tolerances, same Cardano / Viete branches, arbitrary
  per-lane coefficients.
* the **folded** pipeline (:func:`fold_row` + :func:`solve_folded`) —
  the measured hot path.  The self-consistent solver's per-lane equation
  ``V + qt - poly(V) = 0`` shares ``(c1, c2, c3)`` across every lane of
  one (VDS, interval) bucket; only ``c0`` carries the bias point.  All
  bias-independent algebra (monic normalization, depressed-cubic
  constants, Viete scale factors, degree classification) is folded into
  a per-bucket constant row at table-build time, so one batched solve
  costs a gather plus ~15 array operations instead of re-deriving the
  closed form per lane.

Neither layer runs the scalar path's Newton polish: closed-form roots
of the well-conditioned solver equations are accurate to a few ulp, and
the caller residual-validates every lane (with a scalar fallback), so a
polish would only re-round healthy lanes.

Callers wrap calls in ``np.errstate`` suppression — inactive lanes
intentionally evaluate to NaN/inf before masking.  Roots come back as
``[N, 3]`` NaN-padded and unsorted; selection by window membership and
residual is order-free.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.pwl.polynomials import _DEGREE_TOL

_EPS = 2.220446049250313e-16

#: Viete phase offsets ``2 pi k / 3`` computed exactly as the scalar path
_PHI1 = 2.0 * math.pi * 1 / 3.0
_PHI2 = 2.0 * math.pi * 2 / 3.0

# ----------------------------------------------------------------------
# Folded constant rows
# ----------------------------------------------------------------------

#: column layout of a folded row (see :func:`fold_row`)
CLS, M0, C1, C2, C3, LO, HI, INV_C3, A_THIRD, Q_CONST, TP3, M_VIETE, PM, \
    C1SQ, K4, TWO_C2, NCOLS = range(17)


class FoldedTables:
    """Column-major view of folded rows: one contiguous 1-D array per
    constant, so the hot path gathers only the columns a lane class
    needs (2-D row gathers plus strided column views measurably lose to
    1-D takes at sweep sizes)."""

    __slots__ = ("cls", "m0", "c1", "c2", "c3", "lo", "hi", "inv_c3",
                 "a_third", "q_const", "tp3", "m_viete", "pm", "c1sq",
                 "k4", "two_c2", "width")

    def __init__(self, rows: np.ndarray) -> None:
        cols = [np.ascontiguousarray(rows[:, k]) for k in range(NCOLS)]
        self.cls = cols[CLS].astype(np.int8)
        (self.m0, self.c1, self.c2, self.c3, self.lo, self.hi,
         self.inv_c3, self.a_third, self.q_const, self.tp3, self.m_viete,
         self.pm, self.c1sq, self.k4, self.two_c2) = cols[M0:TWO_C2 + 1]
        #: candidate-root columns any lane of these tables can produce
        self.width = 3 if (self.cls == 3).any() else 2


def fold_row(poly, lo: float, hi: float):
    """Constant row for one (VDS, interval) bucket.

    ``poly`` holds ascending coefficients of the bucket's charge
    polynomial ``p``; the solved equation is ``qt + V - p(V) = 0`` i.e.
    ``c0 = qt - p0``, ``c1 = 1 - p1``, ``c2 = -p2``, ``c3 = -p3``.  All
    scalar arithmetic below mirrors ``polynomials.solve_cubic`` exactly
    so folded results match the scalar solver bit-for-bit wherever libm
    agrees.

    The degree class stored in ``CLS`` is computed with ``scale =
    max(|c1|, |c2|, |c3|)`` — without the bias-dependent ``|c0|`` the
    scalar ``real_roots`` also folds in.  A lane whose ``|c0|`` is so
    large that it would flip the scalar classification produces a root
    that fails the caller's residual validation and is re-solved
    scalar-side, so the difference cannot leak into results.
    """
    p0 = float(poly[0]) if len(poly) > 0 else 0.0
    p1 = float(poly[1]) if len(poly) > 1 else 0.0
    p2 = float(poly[2]) if len(poly) > 2 else 0.0
    p3 = float(poly[3]) if len(poly) > 3 else 0.0
    c1 = 1.0 + (-p1)
    c2 = -p2
    c3 = -p3
    scale = max(abs(c1), abs(c2), abs(c3))
    row = [0.0] * NCOLS
    row[M0] = -p0
    row[C1], row[C2], row[C3] = c1, c2, c3
    row[LO], row[HI] = lo, hi
    if scale == 0.0:
        return row  # constant equation: lanes go to the scalar fallback
    tol = _DEGREE_TOL * scale
    if abs(c3) < tol:
        c3 = 0.0
    if c3 == 0.0 and abs(c2) < tol:
        c2 = 0.0
    if c3 == 0.0 and c2 == 0.0 and abs(c1) < tol:
        c1 = 0.0
    if c3 != 0.0:
        row[CLS] = 3.0
        a = c2 / c3
        b = c1 / c3
        a_third = a / 3.0
        p = b - a * a_third
        third_p = p / 3.0
        row[INV_C3] = 1.0 / c3
        row[A_THIRD] = a_third
        row[Q_CONST] = 2.0 * a * a * a / 27.0 - a * b / 3.0
        row[TP3] = third_p * third_p * third_p
        if third_p < 0.0:
            m = 2.0 * math.sqrt(-third_p)
            row[M_VIETE] = m
            row[PM] = p * m
        else:
            # p >= 0 forces disc > 0 (lone Cardano root); the Viete
            # constants are never read.
            row[M_VIETE] = math.nan
            row[PM] = math.nan
    elif c2 != 0.0:
        row[CLS] = 2.0
        row[C1SQ] = c1 * c1
        row[K4] = 4.0 * c2
        row[TWO_C2] = 2.0 * c2
    elif c1 != 0.0:
        row[CLS] = 1.0
    return row


def solve_folded(t: FoldedTables, rowidx: np.ndarray, eq0: np.ndarray,
                 cls: np.ndarray, roots: np.ndarray) -> None:
    """Roots of ``qt + V - p(V) = 0`` into ``roots`` (``[N, width]``,
    NaN-prefilled), for lanes addressing folded rows ``rowidx``.

    ``cls`` is the pre-gathered class column.  Lanes this pipeline
    cannot serve (true double roots, classification edge cases) keep
    their NaN padding and are re-solved scalar-side by the caller's
    residual validation.
    """
    n = eq0.shape[0]
    counts = np.bincount(cls, minlength=4)

    if counts[3]:
        if counts[3] == n:
            lane, sidx, e0 = None, rowidx, eq0
        else:
            lane = np.flatnonzero(cls == 3)
            sidx = rowidx[lane]
            e0 = eq0[lane]
        c = e0 * t.inv_c3[sidx]
        q = t.q_const[sidx] + c
        half_q = 0.5 * q
        disc = half_q * half_q + t.tp3[sidx]
        a_third = t.a_third[sidx]
        pos = disc > 0.0
        n_pos = np.count_nonzero(pos)
        # disc == 0.0 exactly (a true double root) is left NaN for the
        # scalar fallback; unlike the scalar path no noise floor is
        # applied — near-degenerate lanes either agree to a few ulp or
        # fail residual validation and fall back.
        out = roots if lane is None else np.full((lane.size, 3), np.nan)
        if n_pos == e0.shape[0]:
            _cardano(half_q, disc, a_third, out, None)
        else:
            neg = disc < 0.0
            if np.count_nonzero(neg) == e0.shape[0]:
                _viete(q, t.m_viete[sidx], t.pm[sidx], a_third, out, None)
            else:
                if n_pos:
                    _cardano(half_q, disc, a_third, out,
                             np.flatnonzero(pos))
                if neg.any():
                    _viete(q, t.m_viete[sidx], t.pm[sidx], a_third, out,
                           np.flatnonzero(neg))
        if lane is not None:
            roots[lane] = out

    if not (counts[2] or counts[1]):
        return
    if counts[3] == 0:
        # No cubic lanes: evaluate the quadratic closed form unmasked
        # and overlay the linear formula — one pass beats two
        # extractions when the classes interleave (model1 sweeps).
        c1 = t.c1[rowidx]
        quad = cls == 2
        disc = t.c1sq[rowidx] - t.k4[rowidx] * eq0
        sqrt_disc = np.sqrt(disc)       # NaN for disc < 0: no real roots
        q = -0.5 * (c1 + np.copysign(sqrt_disc, c1))
        r0 = np.where(quad, q / t.c2[rowidx], -eq0 / c1)
        nz = q != 0.0
        r1 = np.where(quad & nz, eq0 / np.where(nz, q, 1.0),
                      np.where(quad, 0.0, np.nan))
        double = disc == 0.0
        if double.any():
            r0 = np.where(double & quad, -c1 / t.two_c2[rowidx], r0)
            r1 = np.where(double & quad, np.nan, r1)
        roots[:, 0] = r0
        roots[:, 1] = r1
        return

    if counts[2]:
        lane = np.flatnonzero(cls == 2)
        sidx = rowidx[lane]
        e0 = eq0[lane]
        c1 = t.c1[sidx]
        disc = t.c1sq[sidx] - t.k4[sidx] * e0
        sqrt_disc = np.sqrt(disc)       # NaN for disc < 0: no real roots
        q = -0.5 * (c1 + np.copysign(sqrt_disc, c1))
        r0 = q / t.c2[sidx]
        nz = q != 0.0
        r1 = np.where(nz, e0 / np.where(nz, q, 1.0), 0.0)
        double = disc == 0.0
        if double.any():
            r0 = np.where(double, -c1 / t.two_c2[sidx], r0)
            r1 = np.where(double, np.nan, r1)
        roots[lane, 0] = r0
        roots[lane, 1] = r1

    if counts[1]:
        lane = np.flatnonzero(cls == 1)
        roots[lane, 0] = -eq0[lane] / t.c1[rowidx[lane]]


def _cardano(half_q, disc, a_third, roots, idx) -> None:
    """One real root: ``cbrt(-q/2 + sqrt(D)) + cbrt(-q/2 - sqrt(D))``."""
    if idx is not None:
        half_q, disc, a_third = half_q[idx], disc[idx], a_third[idx]
    sqrt_disc = np.sqrt(disc)
    value = np.cbrt(-half_q + sqrt_disc) + np.cbrt(-half_q - sqrt_disc) \
        - a_third
    if idx is None:
        roots[:, 0] = value
    else:
        roots[idx, 0] = value


def _viete(q, m, pm, a_third, roots, idx) -> None:
    """Three real roots (trigonometric method; ``p < 0`` here)."""
    if idx is not None:
        q, m, pm, a_third = q[idx], m[idx], pm[idx], a_third[idx]
    arg = (3.0 * q) / pm
    arg = np.minimum(1.0, np.maximum(-1.0, arg))
    theta = np.arccos(arg) / 3.0
    r0 = m * np.cos(theta) - a_third
    r1 = m * np.cos(theta - _PHI1) - a_third
    r2 = m * np.cos(theta - _PHI2) - a_third
    if idx is None:
        roots[:, 0] = r0
        roots[:, 1] = r1
        roots[:, 2] = r2
    else:
        roots[idx, 0] = r0
        roots[idx, 1] = r1
        roots[idx, 2] = r2


# ----------------------------------------------------------------------
# Generic per-lane mirror (fallback when coefficients vary per lane or
# the folded classification bound is exceeded)
# ----------------------------------------------------------------------

def polyval4(c0, c1, c2, c3, x):
    """Horner evaluation, identical association order to the scalar
    ``polyval`` run on zero-padded length-4 coefficients."""
    return ((c3 * x + c2) * x + c1) * x + c0


def real_roots_batch(c0: np.ndarray, c1: np.ndarray, c2: np.ndarray,
                     c3: np.ndarray) -> np.ndarray:
    """Real roots per lane; ``[N, 3]`` NaN-padded, unsorted.

    Degree reduction matches the scalar ``real_roots``: a leading
    coefficient below ``_DEGREE_TOL`` relative to the largest magnitude
    in its lane is treated as zero.
    """
    n = c0.shape[0]
    roots = np.full((n, 3), np.nan)
    if n == 0:
        return roots
    scale = np.maximum(np.maximum(np.abs(c0), np.abs(c1)),
                       np.maximum(np.abs(c2), np.abs(c3)))
    tol = _DEGREE_TOL * scale
    cubic = np.abs(c3) >= tol
    quad = ~cubic & (np.abs(c2) >= tol)
    lin = ~(cubic | quad) & (np.abs(c1) >= tol)

    if cubic.any():
        idx = np.flatnonzero(cubic)
        sub = np.full((idx.size, 3), np.nan)
        _cubic_generic(c0[idx], c1[idx], c2[idx], c3[idx], sub)
        roots[idx] = sub
    if quad.any():
        idx = np.flatnonzero(quad)
        q0, q1, q2 = c0[idx], c1[idx], c2[idx]
        disc = q1 * q1 - 4.0 * q2 * q0
        sqrt_disc = np.sqrt(disc)
        q = -0.5 * (q1 + np.copysign(sqrt_disc, q1))
        r0 = q / q2
        nz = q != 0.0
        r1 = np.where(nz, q0 / np.where(nz, q, 1.0), 0.0)
        double = disc == 0.0
        if double.any():
            r0 = np.where(double, -q1 / (2.0 * q2), r0)
            r1 = np.where(double, np.nan, r1)
        roots[idx, 0] = r0
        roots[idx, 1] = r1
    if lin.any():
        idx = np.flatnonzero(lin)
        roots[idx, 0] = -c0[idx] / c1[idx]
    return roots


# ----------------------------------------------------------------------
# Stacked per-lane device tables (the circuit-lane batching layer)
# ----------------------------------------------------------------------

#: residual [V] beyond which a stacked root falls back to the scalar
#: solver (same bound as ``ClosedFormSolver``: g' >= 1 bounds the root
#: error by the residual).
_STACK_RESIDUAL_TOL = 1e-12
#: acceptance slack (volts) for a root at a region edge (scalar twin).
_STACK_EDGE_TOL = 1e-9
#: VDS quantization grid shared with ``ClosedFormSolver``.
_STACK_VDS_QUANTUM = 1e-12
_STACK_VDS_SCALE = 1.0 / _STACK_VDS_QUANTUM


class StackedCurves:
    """Piecewise-cubic curve bank: one curve *per lane*, evaluated for
    all lanes in one numpy pass.

    The lane-batched circuit engine simulates many circuit instances at
    once; in a Monte-Carlo batch every lane carries its own fitted
    charge curve, so the single-device vectorization of
    :meth:`~repro.pwl.regions.PiecewiseCharge.value` (one curve, many
    points) does not apply.  This bank stacks the per-lane breakpoints
    (padded with ``+inf``) and ascending coefficients (zero-padded to
    cubic) into rectangular arrays so region lookup is one comparison
    matrix and evaluation one gathered Horner pass, whatever mix of
    devices the lanes hold.
    """

    __slots__ = ("bps", "coeffs", "dcoeffs", "n_lanes", "_lanes")

    def __init__(self, curves) -> None:
        n_lanes = len(curves)
        n_bps = max(len(c.breakpoints) for c in curves)
        self.n_lanes = n_lanes
        #: (L, K) breakpoints, padded with +inf (pad regions unused)
        self.bps = np.full((n_lanes, n_bps), np.inf)
        #: (L, K + 1, 4) ascending region coefficients, zero-padded
        self.coeffs = np.zeros((n_lanes, n_bps + 1, 4))
        #: (L, K + 1, 3) ascending derivative coefficients
        self.dcoeffs = np.zeros((n_lanes, n_bps + 1, 3))
        for lane, curve in enumerate(curves):
            k = len(curve.breakpoints)
            self.bps[lane, :k] = curve.breakpoints
            # Pad regions replicate the last real region so an +inf
            # padded breakpoint can never route a lane to zeros.
            for region in range(n_bps + 1):
                coeffs = curve.coefficients[min(region, k)]
                for j, c in enumerate(coeffs):
                    self.coeffs[lane, region, j] = c
                    if j:
                        self.dcoeffs[lane, region, j - 1] = j * c
        self._lanes = np.arange(n_lanes)

    def value(self, v: np.ndarray,
              idx: Optional[np.ndarray] = None) -> np.ndarray:
        """``Q(v)`` per lane; ``idx`` selects a lane subset (``v`` then
        carries one entry per selected lane)."""
        rows = self._lanes if idx is None else idx
        region = (self.bps[rows] < v[:, None]).sum(axis=1)
        c = self.coeffs[rows, region]
        return ((c[:, 3] * v + c[:, 2]) * v + c[:, 1]) * v + c[:, 0]

    def derivative(self, v: np.ndarray,
                   idx: Optional[np.ndarray] = None) -> np.ndarray:
        """``dQ/dv`` per lane; ``idx`` selects a lane subset."""
        rows = self._lanes if idx is None else idx
        region = (self.bps[rows] < v[:, None]).sum(axis=1)
        c = self.dcoeffs[rows, region]
        return (c[:, 2] * v + c[:, 1]) * v + c[:, 0]


class StackedVscSolver:
    """Hint-warmed vectorized self-consistent-voltage solve across
    lanes with *per-lane* devices.

    :meth:`ClosedFormSolver.solve_many` batches many bias points of one
    device; a lane-batched transient needs the transpose — one bias
    point each for many different devices, every Newton iteration.
    Rebuilding each device's merged (VDS, interval) tables per iterate
    is what makes the scalar path expensive (~2/3 of a scalar solve is
    table construction whenever VDS moves), so this solver skips the
    table entirely:

    1. each lane remembers the VSC it solved last time (the *hint*;
       Newton iterates and successive time steps move VSC by far less
       than a region width, so the hinted region pair is almost always
       still correct);
    2. the source region of the hint and the drain region of
       ``hint + VDS`` select one source polynomial and one (Taylor-
       shifted) drain polynomial per lane — a gather, not a scan;
    3. the combined cubic ``V + Qt/CSum - (QS(V) + QS(V+VDS))/CSum``
       is solved for all lanes by :func:`real_roots_batch`;
    4. a root inside the intersection of both regions' windows with a
       closed-form residual below ``1e-12`` V *proves* the region pair
       was right (the residual equals the true piecewise residual
       inside the window, and g is strictly increasing), so the root is
       the unique solution;
    5. lanes that fail get one refinement pass re-deriving the regions
       from the best candidate root, then fall back to the scalar
       solver (region drift across a breakpoint; rare and exact).

    The hint arrays are owned by the caller (one per CNFET element
    slot), so one solver instance serves any number of slots.
    """

    def __init__(self, solvers) -> None:
        self.solvers = list(solvers)
        n_lanes = len(self.solvers)
        n_bps = max(len(s._qs_bps) for s in self.solvers)
        self.n_lanes = n_lanes
        #: (L, K) source-curve breakpoints, padded with +inf
        self.bps = np.full((n_lanes, n_bps), np.inf)
        #: (L, K + 1) left edge of each region (-inf, b_0, ..., b_k)
        self.lo_edges = np.full((n_lanes, n_bps + 1), np.inf)
        self.lo_edges[:, 0] = -np.inf
        #: (L, K + 1, 4) scaled region coefficients (QS / CSum)
        self.polys = np.zeros((n_lanes, n_bps + 1, 4))
        self.csum = np.array([s._csum for s in self.solvers])
        caps = [s.capacitances for s in self.solvers]
        self.cg = np.array([c.cg for c in caps])
        self.cd = np.array([c.cd for c in caps])
        self.cs = np.array([c.cs for c in caps])
        for lane, s in enumerate(self.solvers):
            k = len(s._qs_bps)
            self.bps[lane, :k] = s._qs_bps
            self.lo_edges[lane, 1:k + 1] = s._qs_bps
            self.lo_edges[lane, k + 1:] = np.inf
            for region in range(n_bps + 1):
                poly = s._qs_polys[min(region, k)]
                for j, c in enumerate(poly):
                    self.polys[lane, region, j] = c
        #: right edge per region: b_i, or +inf past the last breakpoint
        self.hi_edges = np.concatenate(
            [self.bps, np.full((n_lanes, 1), np.inf)], axis=1)
        self._lanes = np.arange(n_lanes)

    def solve(self, vgs: np.ndarray, vds: np.ndarray, hint: np.ndarray,
              idx: Optional[np.ndarray] = None,
              stats=None) -> np.ndarray:
        """VSC per lane (source-referenced, n-frame biases).

        ``idx`` selects a lane subset (``vgs``/``vds`` then carry one
        entry per selected lane).  ``hint`` is the full per-lane hint
        array, updated in place at the solved entries.  ``stats``
        (optional dict) accumulates ``"stacked_lanes"`` and
        ``"stacked_fallbacks"`` counters.
        """
        from repro.pwl.kernels import active_kernel_backend
        rows = self._lanes if idx is None else idx
        n = len(rows)
        out = np.empty(n)
        # The vectorized (or compiled) region solve lives in the kernel
        # tier; it fills ``out`` and reports the selection positions
        # that still need the exact scalar fallback.
        bad = active_kernel_backend().vsc_solve(
            self, rows, idx, vgs, vds, hint, out)
        for k in bad:
            out[k] = self.solvers[int(rows[k])].solve(
                float(vgs[k]), float(vds[k]), 0.0)
        if stats is not None:
            stats["stacked_lanes"] = stats.get("stacked_lanes", 0) + n
            stats["stacked_fallbacks"] = \
                stats.get("stacked_fallbacks", 0) + bad.size
        hint[rows] = out
        return out


def _cubic_generic(c0, c1, c2, c3, roots) -> None:
    """Twin of ``solve_cubic`` (minus the polish), per-lane coefficients,
    including the scalar path's discriminant noise floor."""
    a = c2 / c3
    b = c1 / c3
    c = c0 / c3
    a_third = a / 3.0
    p = b - a * a_third
    q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c
    half_q = 0.5 * q
    third_p = p / 3.0
    disc = half_q * half_q + third_p * third_p * third_p
    abs_a = np.abs(a)
    mag_q = abs_a * abs_a * abs_a / 27.0 + np.abs(a * b) / 3.0 + np.abs(c)
    mag_p = np.abs(b) + a * a / 3.0
    disc_noise = 8.0 * _EPS * (
        np.abs(half_q) * mag_q + third_p * third_p * 3.0 * mag_p
    )
    snap = np.abs(disc) < disc_noise
    if snap.any():
        disc = np.where(snap, 0.0, disc)
    m = 2.0 * np.sqrt(np.where(third_p < 0.0, -third_p, np.nan))
    pm = p * m
    pos = disc > 0.0
    neg = disc < 0.0
    if pos.any():
        _cardano(half_q, disc, a_third, roots, np.flatnonzero(pos))
    if neg.any():
        _viete(q, m, pm, a_third, roots, np.flatnonzero(neg))
    zero = ~(pos | neg)
    if zero.any():
        i = np.flatnonzero(zero)
        hq = half_q[i]
        u = np.cbrt(-hq)
        r1 = 2.0 * u - a_third[i]
        r2 = -u - a_third[i]
        triple = hq == 0.0
        roots[i, 0] = np.where(triple, -a_third[i], r1)
        roots[i, 1] = np.where(triple | (r1 == r2), np.nan, r2)
