"""Model 2 — the paper's four-piece approximation (Fig. 3).

Regions (relative to ``EF/q``):

1. linear for ``VSC - EF/q <= -0.28 V``,
2. quadratic for ``-0.28 V < VSC - EF/q <= -0.03 V``,
3. third order for ``-0.03 V < VSC - EF/q <= +0.12 V``,
4. zero for ``VSC - EF/q > +0.12 V``.

Three free coefficients (one quadratic curvature + two cubic); the paper
reports ~1100x speed-up and < 2% average RMS error at T = 300 K,
EF = -0.32 eV.
"""

from __future__ import annotations

from repro.physics.charge import ChargeModel
from repro.pwl.fitting import FitSpec, FittedCharge, fit_piecewise_charge

#: Paper's Model 2 region boundaries relative to EF/q [V].
MODEL2_BOUNDARIES = (-0.28, -0.03, 0.12)

#: Fit window relative to EF/q — matches the VSC span of the paper's
#: Fig. 3 (absolute -0.8..0 V at EF = -0.32 eV).
MODEL2_WINDOW = (-0.48, 0.32)

MODEL2_SPEC = FitSpec(
    orders=(1, 2, 3, 0),
    boundaries_rel=MODEL2_BOUNDARIES,
    window_rel=MODEL2_WINDOW,
    name="model2",
)


def build_model2(charge: ChargeModel,
                 optimize_boundaries: bool = False) -> FittedCharge:
    """Fit Model 2 to a theoretical charge model (see module docstring)."""
    return fit_piecewise_charge(
        charge, MODEL2_SPEC, optimize_boundaries=optimize_boundaries
    )
