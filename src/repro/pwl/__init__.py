"""The paper's contribution: piecewise non-linear charge approximation.

Pipeline
--------
1. :mod:`repro.pwl.fitting` samples the theoretical ``QS(VSC)`` curve
   (from :mod:`repro.physics.charge`) and fits a C1-continuous piecewise
   polynomial of order <= 3 per region, optionally optimising the region
   boundaries to minimise RMS deviation (paper §IV).
2. :mod:`repro.pwl.model1` / :mod:`repro.pwl.model2` provide the paper's
   two concrete region layouts (3-piece and 4-piece).
3. :mod:`repro.pwl.selfconsistent` solves the self-consistent-voltage
   equation in closed form (linear/quadratic/Cardano-cubic per region
   combination) — no Newton-Raphson, no Fermi integrals (paper §V).
4. :mod:`repro.pwl.device` wraps everything into the public
   :class:`CNFET` device.
5. :mod:`repro.pwl.codegen` emits VHDL-AMS / Verilog-A / SPICE source
   for a fitted device (paper §VII released a VHDL-AMS model).
"""

from repro.pwl.device import CNFET
from repro.pwl.fitting import FitSpec, FittedCharge, fit_piecewise_charge
from repro.pwl.model1 import MODEL1_SPEC, build_model1
from repro.pwl.model2 import MODEL2_SPEC, build_model2
from repro.pwl.regions import PiecewiseCharge
from repro.pwl.selfconsistent import ClosedFormSolver

__all__ = [
    "CNFET",
    "FitSpec",
    "FittedCharge",
    "fit_piecewise_charge",
    "MODEL1_SPEC",
    "MODEL2_SPEC",
    "build_model1",
    "build_model2",
    "PiecewiseCharge",
    "ClosedFormSolver",
]
