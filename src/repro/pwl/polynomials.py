"""Closed-form real-root finding for polynomials of degree <= 3.

This is the numerical engine that replaces Newton-Raphson in the fast
model: on every piecewise region the self-consistent-voltage residual is
a polynomial with degree at most 3, whose real roots have closed forms
(linear formula, stable quadratic formula, Cardano / trigonometric
cubic).  Coefficients are ascending: ``p(x) = c0 + c1 x + c2 x^2 + c3
x^3``.

Every root is polished with two Newton steps — the closed forms are
exact in real arithmetic but can lose a few digits near multiple roots;
polishing restores them at negligible cost.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ParameterError

#: relative threshold below which a leading coefficient is treated as 0
_DEGREE_TOL = 1e-14


def polyval(coeffs: Sequence[float], x: float) -> float:
    """Horner evaluation with ascending coefficients."""
    acc = 0.0
    for c in reversed(coeffs):
        acc = acc * x + c
    return acc


def polyder(coeffs: Sequence[float]) -> List[float]:
    """Derivative coefficients (ascending)."""
    return [i * c for i, c in enumerate(coeffs)][1:]


def _polish(coeffs: Sequence[float], root: float, steps: int = 2) -> float:
    """Guarded Newton polish: a step is only accepted when it reduces
    the residual.  Near multiple roots a raw Newton step can blow up
    (residual and derivative both ~0 with a garbage quotient), which
    would *degrade* an already-exact closed-form root."""
    # Hand-rolled derivative of the (always length-4) cubic caller:
    # value-identical to polyder but allocation-free on the hot path.
    dcoeffs = (coeffs[1], 2 * coeffs[2], 3 * coeffs[3]) \
        if len(coeffs) == 4 else polyder(coeffs)
    x = root
    fx = abs(polyval(coeffs, x))
    for _ in range(steps):
        if fx == 0.0:
            break
        df = polyval(dcoeffs, x)
        if df == 0.0:
            break
        x_next = x - polyval(coeffs, x) / df
        if not math.isfinite(x_next):
            break
        # A polish is a local refinement: a large step means Newton is
        # running off toward a *different* root (whose smaller residual
        # would fool the pure residual guard).
        if abs(x_next - x) > 0.1 * (1.0 + abs(x)):
            break
        f_next = abs(polyval(coeffs, x_next))
        if f_next >= fx:
            break
        x, fx = x_next, f_next
    return x


def solve_linear(c0: float, c1: float) -> List[float]:
    """Roots of ``c0 + c1 x = 0``."""
    if c1 == 0.0:
        return []  # constant: no root (or everything; callers treat as none)
    return [-c0 / c1]


def solve_quadratic(c0: float, c1: float, c2: float) -> List[float]:
    """Real roots of ``c0 + c1 x + c2 x^2 = 0`` (ascending), sorted.

    Uses the cancellation-free formulation
    ``q = -(c1 + sign(c1) sqrt(disc))/2``; ``x1 = q/c2``, ``x2 = c0/q``.
    """
    if c2 == 0.0:
        return solve_linear(c0, c1)
    disc = c1 * c1 - 4.0 * c2 * c0
    if disc < 0.0:
        return []
    sqrt_disc = math.sqrt(disc)
    if disc == 0.0:
        return [-c1 / (2.0 * c2)]
    sign_c1 = 1.0 if c1 >= 0.0 else -1.0
    q = -0.5 * (c1 + sign_c1 * sqrt_disc)
    roots = []
    roots.append(q / c2)
    if q != 0.0:
        roots.append(c0 / q)
    else:
        roots.append(0.0)
    return sorted(roots)


def solve_cubic(c0: float, c1: float, c2: float, c3: float) -> List[float]:
    """Real roots of a cubic, ascending coefficients, sorted.

    Depressed-cubic reduction ``x = t - c2/(3 c3)``, then Cardano for one
    real root (positive discriminant) or the trigonometric method of
    Viete for three real roots.  All returned roots are Newton-polished.
    """
    if c3 == 0.0:
        return solve_quadratic(c0, c1, c2)
    # Normalise to monic: t^3 + a t^2 + b t + c
    a = c2 / c3
    b = c1 / c3
    c = c0 / c3
    # Depress: t = s - a/3  ->  s^3 + p s + q
    a_third = a / 3.0
    p = b - a * a_third
    q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c
    half_q = 0.5 * q
    third_p = p / 3.0
    disc = half_q * half_q + third_p * third_p * third_p
    # Near-zero discriminants are double roots that rounded off exact
    # zero; classifying them as single-root Cardano would silently drop
    # the multiple root.  The threshold propagates the rounding error of
    # the depression step: p and q are small differences of intermediates
    # as large as |a|^3/27, so the noise floor of ``disc`` scales with
    # those magnitudes, not with disc itself.  Misclassifying a
    # genuinely-simple near-double case merely returns extra nearby
    # candidates, which callers filter by residual.
    eps = 2.220446049250313e-16
    mag_q = abs(a) ** 3 / 27.0 + abs(a * b) / 3.0 + abs(c)
    mag_p = abs(b) + a * a / 3.0
    disc_noise = 8.0 * eps * (
        abs(half_q) * mag_q + third_p * third_p * 3.0 * mag_p
    )
    if abs(disc) < disc_noise:
        disc = 0.0
    roots: List[float]
    if disc > 0.0:
        # One real root (Cardano).
        sqrt_disc = math.sqrt(disc)
        u = _cbrt(-half_q + sqrt_disc)
        v = _cbrt(-half_q - sqrt_disc)
        roots = [u + v - a_third]
    elif disc == 0.0:
        if half_q == 0.0:
            roots = [-a_third]
        else:
            u = _cbrt(-half_q)
            roots = sorted({2.0 * u - a_third, -u - a_third})
    else:
        # Three real roots (Viete trigonometric form); p < 0 here.
        m = 2.0 * math.sqrt(-third_p)
        arg = 3.0 * q / (p * m)
        arg = min(1.0, max(-1.0, arg))
        theta = math.acos(arg) / 3.0
        roots = sorted(
            m * math.cos(theta - 2.0 * math.pi * k / 3.0) - a_third
            for k in range(3)
        )
    coeffs = (c0, c1, c2, c3)
    return sorted(_polish(coeffs, r) for r in roots)


def _cbrt(x: float) -> float:
    """Real cube root preserving sign."""
    if x >= 0.0:
        return x ** (1.0 / 3.0)
    return -((-x) ** (1.0 / 3.0))


def real_roots(coeffs: Sequence[float]) -> List[float]:
    """Real roots of an ascending-coefficient polynomial, degree <= 3.

    Leading coefficients that are negligible relative to the largest
    coefficient magnitude are dropped (degree reduction), which is what
    the region solver needs when a cubic region degenerates numerically
    to a quadratic.
    """
    cs = [float(c) for c in coeffs]
    if len(cs) > 4:
        raise ParameterError(
            f"closed forms only exist up to degree 3; got degree {len(cs)-1}"
        )
    while len(cs) < 4:
        cs.append(0.0)
    c0, c1, c2, c3 = cs
    # max of four floats beats a generator expression on this hot path
    scale = max(abs(c0), abs(c1), abs(c2), abs(c3))
    if scale == 0.0:
        return []
    if abs(c3) < _DEGREE_TOL * scale:
        c3 = 0.0
    if c3 == 0.0 and abs(c2) < _DEGREE_TOL * scale:
        c2 = 0.0
    if c3 == 0.0 and c2 == 0.0 and abs(c1) < _DEGREE_TOL * scale:
        c1 = 0.0
    if c3 != 0.0:
        return solve_cubic(c0, c1, c2, c3)
    if c2 != 0.0:
        return solve_quadratic(c0, c1, c2)
    return solve_linear(c0, c1)


def shift_polynomial(coeffs: Sequence[float], dx: float) -> List[float]:
    """Coefficients of ``p(x + dx)`` given those of ``p(x)`` (ascending).

    Synthetic-division (repeated Horner) Taylor shift — exact in exact
    arithmetic, numerically benign for the |dx| <= 1 V shifts used here.
    """
    cs = [float(c) for c in coeffs]
    n = len(cs)
    # Repeated synthetic division by (x - (-dx)).
    for i in range(n - 1):
        for j in range(n - 2, i - 1, -1):
            cs[j] += dx * cs[j + 1]
    return cs
