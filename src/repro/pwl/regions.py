"""Piecewise-polynomial charge curve representation.

A :class:`PiecewiseCharge` is the fitted approximation of the mobile
charge ``QS(VSC)``: ``k`` breakpoints (absolute volts, ascending) divide
the axis into ``k+1`` regions, each carrying an ascending-coefficient
polynomial in the *absolute* ``VSC`` coordinate.  The rightmost region
of the paper's models is identically zero, and the leftmost is linear so
the curve extrapolates sanely under gate overdrive.

The drain-side curve is the same function shifted by the drain bias,
``QD(VSC) = QS(VSC + VDS)`` (both densities are the one universal
function of the barrier potential, seen from the two contacts); the
:meth:`shifted` method implements this exactly at polynomial level, which
is what lets the closed-form solver treat both charges uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ParameterError
from repro.pwl.polynomials import polyder, polyval, shift_polynomial

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class PiecewiseCharge:
    """C1 piecewise polynomial ``Q(VSC)`` (charge per unit length, C/m).

    Attributes
    ----------
    breakpoints:
        Ascending absolute breakpoints ``b_1 < ... < b_k`` [V].
    coefficients:
        ``k + 1`` ascending-coefficient tuples; ``coefficients[i]`` is
        valid on ``(b_{i-1}, b_i]`` (with ``b_0 = -inf``,
        ``b_{k+1} = +inf``).
    """

    breakpoints: Tuple[float, ...]
    coefficients: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        bps = list(self.breakpoints)
        if sorted(bps) != bps:
            raise ParameterError(f"breakpoints must ascend: {bps}")
        if len(self.coefficients) != len(bps) + 1:
            raise ParameterError(
                f"need {len(bps) + 1} regions for {len(bps)} breakpoints, "
                f"got {len(self.coefficients)}"
            )
        for coeffs in self.coefficients:
            if len(coeffs) == 0 or len(coeffs) > 4:
                raise ParameterError(
                    f"region polynomials must have 1..4 coefficients, "
                    f"got {len(coeffs)}"
                )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def region_index(self, vsc: float) -> int:
        """Index of the region containing ``vsc`` (right-closed regions)."""
        lo, hi = 0, len(self.breakpoints)
        # binary search for first breakpoint >= vsc
        while lo < hi:
            mid = (lo + hi) // 2
            if self.breakpoints[mid] >= vsc:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def value(self, vsc: ArrayLike) -> ArrayLike:
        """Evaluate ``Q(VSC)``; vectorised."""
        if np.isscalar(vsc):
            return polyval(self.coefficients[self.region_index(float(vsc))],
                           float(vsc))
        v = np.asarray(vsc, dtype=float)
        idx = np.searchsorted(np.asarray(self.breakpoints), v, side="left")
        out = np.empty_like(v)
        for region, coeffs in enumerate(self.coefficients):
            mask = idx == region
            if np.any(mask):
                out[mask] = _npolyval(coeffs, v[mask])
        return out

    def derivative(self, vsc: ArrayLike) -> ArrayLike:
        """Evaluate ``dQ/dVSC``; vectorised."""
        if np.isscalar(vsc):
            coeffs = self.coefficients[self.region_index(float(vsc))]
            dc = polyder(coeffs)
            return polyval(dc, float(vsc)) if dc else 0.0
        v = np.asarray(vsc, dtype=float)
        idx = np.searchsorted(np.asarray(self.breakpoints), v, side="left")
        out = np.zeros_like(v)
        for region, coeffs in enumerate(self.coefficients):
            mask = idx == region
            dc = polyder(coeffs)
            if np.any(mask) and dc:
                out[mask] = _npolyval(dc, v[mask])
        return out

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def shifted(self, dv: float) -> "PiecewiseCharge":
        """The curve ``Q(VSC + dv)`` — breakpoints move by ``-dv`` and
        each region polynomial is Taylor-shifted."""
        new_bps = tuple(b - dv for b in self.breakpoints)
        new_coeffs = tuple(
            tuple(shift_polynomial(c, dv)) for c in self.coefficients
        )
        return PiecewiseCharge(new_bps, new_coeffs)

    def with_offset(self, dq: float) -> "PiecewiseCharge":
        """The curve ``Q(VSC) + dq`` (constant charge offset).

        Used when re-anchoring a fit at another Fermi level: the
        theoretical charge is a pure shift *plus* a constant from the
        EF-dependent equilibrium density (``QS = q (NS - N0/2)``)."""
        if dq == 0.0:
            return self
        return PiecewiseCharge(
            self.breakpoints,
            tuple((coeffs[0] + dq,) + tuple(coeffs[1:])
                  for coeffs in self.coefficients),
        )

    def continuity_defects(self) -> List[Tuple[float, float]]:
        """Per-breakpoint ``(|value jump|, |slope jump|)`` — both should
        be ~0 for a C1 construction; exposed for tests and validation."""
        defects = []
        for i, b in enumerate(self.breakpoints):
            left, right = self.coefficients[i], self.coefficients[i + 1]
            dv = abs(polyval(left, b) - polyval(right, b))
            dl = polyder(left)
            dr = polyder(right)
            ds = abs((polyval(dl, b) if dl else 0.0)
                     - (polyval(dr, b) if dr else 0.0))
            defects.append((dv, ds))
        return defects

    @property
    def max_order(self) -> int:
        return max(len(c) - 1 for c in self.coefficients)

    def describe(self) -> str:
        """Human-readable region table (used by the CLI and reports)."""
        lines = []
        bounds = [-float("inf"), *self.breakpoints, float("inf")]
        for i, coeffs in enumerate(self.coefficients):
            rng = f"({bounds[i]:+.4f}, {bounds[i+1]:+.4f}]"
            terms = " + ".join(
                f"{c:.4e}*V^{p}" if p else f"{c:.4e}"
                for p, c in enumerate(coeffs)
            )
            lines.append(f"region {i}: VSC in {rng}: Q = {terms}")
        return "\n".join(lines)


def _npolyval(coeffs: Sequence[float], x: np.ndarray) -> np.ndarray:
    acc = np.zeros_like(x)
    for c in reversed(list(coeffs)):
        acc = acc * x + c
    return acc
