"""Closed-form solution of the self-consistent-voltage equation (paper §V).

With the piecewise charge approximation, the residual

``g(VSC) = VSC + (Qt - QS(VSC) - QD(VSC)) / CSum``

is piecewise polynomial of degree <= 3 (``QD`` is the same curve shifted
by the drain bias).  The solver therefore:

1. merges the source breakpoints with the VDS-shifted drain breakpoints
   into at most ``2k`` axis points;
2. evaluates ``g`` at each breakpoint (cheap Horner evaluations) and
   locates the sign change — ``g`` is strictly increasing because each
   fitted charge is non-increasing, so there is exactly one;
3. solves that single interval's polynomial with the closed forms of
   :mod:`repro.pwl.polynomials` — **no Newton-Raphson iterations and no
   Fermi-Dirac integrals**, which is the entire point of the paper.

A Brent fallback guards pathological fitted curves (e.g. a user-supplied
fit that is locally increasing); it never triggers for the paper's
models but keeps the solver total.

The hot path is deliberately plain Python floats + tuples (no numpy):
one solve costs a handful of Horner evaluations and one cubic formula,
which is what produces the three-orders-of-magnitude speed-up measured
in the Table I benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError, RootNotFoundError
from repro.physics.capacitance import TerminalCapacitances
from repro.pwl import batch
from repro.pwl.batch import polyval4, solve_folded
from repro.pwl.polynomials import polyval, real_roots, shift_polynomial
from repro.pwl.regions import PiecewiseCharge
from repro.reference.solver import brent

#: acceptance slack (volts) for a closed-form root at a region edge
_EDGE_TOL = 1e-9

#: VDS cache-key resolution [V].  Newton iterates and waveform samples
#: carry float noise well below a picovolt; snapping keys to this grid
#: turns those into cache hits while perturbing the solved VSC by less
#: than the quantum itself (the residual is 1-Lipschitz in the shift).
_VDS_QUANTUM = 1e-12
_VDS_SCALE = 1.0 / _VDS_QUANTUM

#: residual [V] beyond which a batched root is recomputed scalar-side.
#: g is 1-Lipschitz-bounded from below (g' >= 1 for non-increasing
#: charge fits), so the accepted root error is bounded by this value;
#: healthy closed-form lanes sit near 1e-16.
_BATCH_RESIDUAL_TOL = 1e-12


def _quantize_vds(vds: float) -> float:
    """Snap a drain bias to the cache grid (exact twin of the batched
    quantization so scalar and batch paths share cache entries)."""
    return math.floor(vds * _VDS_SCALE + 0.5) * _VDS_QUANTUM


class ClosedFormSolver:
    """Closed-form VSC solver for a fitted charge curve.

    Parameters
    ----------
    qs_curve:
        Fitted source-side charge ``QS(VSC)`` [C/m].
    capacitances:
        Terminal capacitance partition (provides ``CSum`` and ``Qt``).

    Notes
    -----
    Per distinct ``VDS`` the merged breakpoint table and summed
    polynomial coefficients are cached — a family sweep revisits each
    drain bias once per gate voltage, so caching removes ~half the
    arithmetic of a sweep.
    """

    def __init__(self, qs_curve: PiecewiseCharge,
                 capacitances: TerminalCapacitances) -> None:
        self.qs_curve = qs_curve
        self.capacitances = capacitances
        self._csum = capacitances.csum
        if self._csum <= 0.0:
            raise ParameterError("CSum must be positive")
        # Scaled source curve: QS / CSum, ascending tuples.
        self._qs_bps: Tuple[float, ...] = qs_curve.breakpoints
        self._qs_polys: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(c / self._csum for c in coeffs)
            for coeffs in qs_curve.coefficients
        )
        self._vds_cache: Dict[float, Tuple[Tuple[float, ...],
                                           Tuple[Tuple[float, ...], ...]]] = {}
        #: stacked per-sweep solve tables keyed by the raw VDS bytes
        self._batch_cache: Dict[bytes, tuple] = {}
        #: reusable per-size scratch for the batched solve
        self._scratch: Dict[Tuple[int, int], Tuple[np.ndarray,
                                                   np.ndarray]] = {}

    # ------------------------------------------------------------------

    def _segments_for_vds(self, vds: float):
        """Merged breakpoints and per-interval polynomials of
        ``(QS(V) + QS(V + VDS)) / CSum`` (ascending coefficients).

        Keys are quantized to ``_VDS_QUANTUM`` so float-noise variants of
        the same bias (transient Newton iterates, repeated sweep values)
        hit the same entry instead of growing the cache to its cap.
        """
        vds = _quantize_vds(vds)
        cached = self._vds_cache.get(vds)
        if cached is not None:
            return cached
        qs_bps = self._qs_bps
        qd_bps = tuple(b - vds for b in qs_bps)
        merged = sorted(set(qs_bps) | set(qd_bps))
        polys: List[Tuple[float, ...]] = []
        for i in range(len(merged) + 1):
            if i < len(merged):
                probe = merged[i] - 1e-12 if i == 0 else \
                    0.5 * (merged[i - 1] + merged[i])
                if i == 0:
                    probe = merged[0] - 1.0
            else:
                probe = merged[-1] + 1.0
            qs_poly = self._qs_polys[_region_of(qs_bps, probe)]
            qd_region = _region_of(qd_bps, probe)
            qd_poly_src = self._qs_polys[qd_region]
            # QD(V) = QS(V + vds): shift the source polynomial.
            qd_poly = tuple(shift_polynomial(qd_poly_src, vds))
            width = max(len(qs_poly), len(qd_poly))
            total = [0.0] * width
            for j, c in enumerate(qs_poly):
                total[j] += c
            for j, c in enumerate(qd_poly):
                total[j] += c
            polys.append(tuple(total))
        result = (tuple(merged), tuple(polys))
        if len(self._vds_cache) >= 4096:
            # FIFO eviction: long transients visit an unbounded stream of
            # biases; dropping the oldest entry keeps the cache useful
            # instead of freezing it at the first 4096 keys.
            self._vds_cache.pop(next(iter(self._vds_cache)))
        self._vds_cache[vds] = result
        return result

    # ------------------------------------------------------------------

    def residual(self, vsc: float, vg: float, vd: float,
                 vs: float = 0.0) -> float:
        """``g(VSC)`` in volts (residual scaled by 1/CSum)."""
        vds = vd - vs
        qt_scaled = self.capacitances.terminal_charge(vg, vd, vs) / self._csum
        merged, polys = self._segments_for_vds(vds)
        poly = polys[_region_of(merged, vsc)]
        return vsc + qt_scaled - polyval(poly, vsc)

    def solve(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """Self-consistent voltage at a bias point — closed form.

        Raises
        ------
        RootNotFoundError
            Only if the fitted curve is so ill-behaved that no root is
            found even by the safeguarded fallback.
        """
        vds = vd - vs
        qt_scaled = self.capacitances.terminal_charge(vg, vd, vs) / self._csum
        merged, polys = self._segments_for_vds(vds)

        # Residual at each breakpoint; find the sign-change interval.
        # g(V) = V + qt_scaled - poly(V) per interval.
        n = len(merged)
        prev_g = None
        interval = None
        for i in range(n):
            b = merged[i]
            g_b = b + qt_scaled - polyval(polys[i], b)
            if g_b >= 0.0 and (prev_g is None or prev_g < 0.0):
                interval = i
                break
            prev_g = g_b
        if interval is None:
            # Root is right of the last breakpoint (zero-charge region),
            # where QS = QD = 0 and g is exactly linear.
            interval = n
        lo = merged[interval - 1] if interval > 0 else None
        hi = merged[interval] if interval < n else None

        poly = polys[interval]
        # Equation: V + qt_scaled - poly(V) = 0.
        eq = list(poly)
        while len(eq) < 2:
            eq.append(0.0)
        eq = [-c for c in eq]
        eq[0] += qt_scaled
        eq[1] += 1.0
        roots = real_roots(eq)
        best = None
        best_res = math.inf
        for r in roots:
            if lo is not None and r < lo - _EDGE_TOL:
                continue
            if hi is not None and r > hi + _EDGE_TOL:
                continue
            res = abs(self._residual_fast(r, qt_scaled, merged, polys))
            if res < best_res:
                best = r
                best_res = res
        if best is not None:
            return best
        return self._fallback(vg, vd, vs, merged)

    # ------------------------------------------------------------------
    # Batched solve
    # ------------------------------------------------------------------

    def _batch_tables(self, vds_q: np.ndarray):
        """Stacked solve tables for an array of (quantized) drain biases.

        Per unique VDS the merged-breakpoint table is padded to a common
        width and stacked, so the sign-change interval of every bias
        point can be located with one comparison matrix instead of a
        Python scan; every (VDS, interval) bucket is folded into a
        constant row (:func:`repro.pwl.batch.fold_row`) carrying its
        bias-independent closed-form algebra.  Tables are cached by the
        byte image of the VDS array — a repeated sweep grid (every
        ``iv_family`` call, every figure workload) pays the folding cost
        once.
        """
        # Cache only modest workloads: each entry retains the key bytes
        # plus a [n, lmax] gathered-base matrix, so the 128-entry cap is
        # a memory bound only when n itself is bounded.
        cacheable = vds_q.nbytes <= 65536
        key = vds_q.tobytes() if cacheable else b""
        if cacheable:
            cached = self._batch_cache.get(key)
            if cached is not None:
                return cached
        uniq, inv = np.unique(vds_q, return_inverse=True)
        segs = [self._segments_for_vds(float(v)) for v in uniq]
        n_groups = len(segs)
        lmax = max(len(merged) for merged, _ in segs)
        base = np.full((n_groups, lmax), np.inf)
        rows = np.zeros((n_groups * (lmax + 1), batch.NCOLS))
        for g, (merged, ps) in enumerate(segs):
            count = len(merged)
            for i in range(count):
                # g(b_i) = base_i + qt_scaled; base ascends because g is
                # strictly increasing for the paper's fitted curves.
                base[g, i] = merged[i] - polyval(ps[i], merged[i])
            edges = (-math.inf, *merged, math.inf)
            for i, coeffs in enumerate(ps):
                rows[g * (lmax + 1) + i] = batch.fold_row(
                    coeffs, edges[i], edges[i + 1])
        inv = inv.astype(np.intp)
        # Per-lane gathers that depend only on the VDS array itself are
        # folded into the cache entry: the negated base matrix (for the
        # one-comparison interval search) and the row-index offsets.
        result = (inv * (lmax + 1), -base[inv], batch.FoldedTables(rows))
        if cacheable:
            if len(self._batch_cache) >= 128:
                self._batch_cache.pop(next(iter(self._batch_cache)))
            self._batch_cache[key] = result
        return result

    def _lane_scratch(self, n: int, width: int):
        """Reusable ``(roots, lane_index)`` buffers for ``n`` lanes.

        Only small buffers are retained (the win is per-call allocation
        overhead, which huge batches amortise on their own) so a one-off
        giant solve does not pin memory for the solver's lifetime.
        """
        buffers = self._scratch.get((n, width))
        if buffers is None:
            buffers = (np.empty((n, width)), np.arange(n))
            if n * width <= 32768:
                if len(self._scratch) >= 16:
                    self._scratch.pop(next(iter(self._scratch)))
                self._scratch[(n, width)] = buffers
        return buffers

    def solve_many(self, vg, vd, vs=0.0) -> np.ndarray:
        """Vectorized :meth:`solve` over arrays of bias points.

        Inputs broadcast against each other; the result carries the
        broadcast shape.  Bias points are bucketed by quantized VDS and
        by sign-change interval, each bucket's polynomial is solved with
        the folded vectorized closed forms of :mod:`repro.pwl.batch`,
        and any lane whose root leaves a residual above
        ``_BATCH_RESIDUAL_TOL`` — or whose bracket holds no unambiguous
        candidate — is recomputed through the scalar path, so batched
        and scalar solves cannot disagree beyond floating noise (never
        triggered by the paper's models).
        """
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        # Same arithmetic as the scalar path: Qt/CSum per point.
        qt_full = self.capacitances.terminal_charge(vg, vd, vs) / self._csum
        shape = qt_full.shape
        qt_scaled = qt_full.ravel()
        if qt_scaled.size == 0:
            return np.empty(shape)
        vds = vd - vs
        if vds.shape != shape:
            vds = np.broadcast_to(vds, shape)
        vds = vds.ravel()

        old_err = np.seterr(invalid="ignore", divide="ignore",
                            over="ignore")
        try:
            vds_q = np.floor(vds * _VDS_SCALE + 0.5) * _VDS_QUANTUM
            inv_base, neg_base, tables = self._batch_tables(vds_q)

            # Sign-change interval: first i with g(b_i) >= 0, located by
            # counting breakpoints whose base lies below -qt (base
            # ascends because g is strictly increasing).
            interval = (neg_base > qt_scaled[:, None]).sum(axis=1)
            rowidx = inv_base + interval
            eq0 = qt_scaled + tables.m0[rowidx]
            c1 = tables.c1[rowidx]
            c2 = tables.c2[rowidx]
            n = eq0.shape[0]

            roots, lanes = self._lane_scratch(n, tables.width)
            roots.fill(np.nan)
            solve_folded(tables, rowidx, eq0, tables.cls[rowidx], roots)

            # NaN-padded candidates compare False on both bounds, so
            # they never count as inside the bracket.
            inside = (roots >= (tables.lo[rowidx] - _EDGE_TOL)[:, None]) \
                & (roots <= (tables.hi[rowidx] + _EDGE_TOL)[:, None])
            count_in = inside.sum(axis=1)
            pick = inside.argmax(axis=1)
            out = roots.ravel()[lanes * roots.shape[1] + pick]
            if tables.width == 3:
                c3 = tables.c3[rowidx]
                best_res = np.abs(polyval4(eq0, c1, c2, c3, out))
            else:
                # No cubic rows: drop the zero c3 term from Horner.
                best_res = np.abs((c2 * out + c1) * out + eq0)
        finally:
            np.seterr(**old_err)

        # A lane is re-solved scalar-side when its bracket holds no
        # candidate, more than one (ambiguous tie the scalar loop breaks
        # by residual), or a residual above tolerance.
        bad = (count_in != 1) | ~(best_res <= _BATCH_RESIDUAL_TOL)
        if bad.any():
            vgf = np.ascontiguousarray(np.broadcast_to(vg, shape)).ravel()
            vdf = np.ascontiguousarray(np.broadcast_to(vd, shape)).ravel()
            vsf = np.ascontiguousarray(np.broadcast_to(vs, shape)).ravel()
            for k in np.flatnonzero(bad):
                out[k] = self.solve(float(vgf[k]), float(vdf[k]),
                                    float(vsf[k]))
        return out.reshape(shape)

    def _residual_fast(self, vsc: float, qt_scaled: float,
                       merged: Sequence[float], polys) -> float:
        poly = polys[_region_of(merged, vsc)]
        return vsc + qt_scaled - polyval(poly, vsc)

    def _fallback(self, vg: float, vd: float, vs: float,
                  merged: Sequence[float]) -> float:
        """Brent fallback on an expanded bracket (defensive path)."""
        span = 1.0 + (merged[-1] - merged[0] if merged else 0.0)
        lo = (merged[0] if merged else 0.0) - span
        hi = (merged[-1] if merged else 0.0) + span

        def g(v: float) -> float:
            return self.residual(v, vg, vd, vs)

        for _ in range(40):
            if g(lo) < 0.0 and g(hi) > 0.0:
                root, _iters = brent(g, lo, hi)
                return root
            lo -= span
            hi += span
            span *= 2.0
        raise RootNotFoundError(
            f"no self-consistent voltage found for VG={vg}, VD={vd}, "
            f"VS={vs} in [{lo}, {hi}]"
        )


def _region_of(breakpoints: Sequence[float], x: float) -> int:
    """First index whose breakpoint is >= x (right-closed regions),
    via branch-light linear scan — breakpoint lists are tiny (<= 6)."""
    i = 0
    for b in breakpoints:
        if x <= b:
            return i
        i += 1
    return i
