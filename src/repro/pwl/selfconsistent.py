"""Closed-form solution of the self-consistent-voltage equation (paper §V).

With the piecewise charge approximation, the residual

``g(VSC) = VSC + (Qt - QS(VSC) - QD(VSC)) / CSum``

is piecewise polynomial of degree <= 3 (``QD`` is the same curve shifted
by the drain bias).  The solver therefore:

1. merges the source breakpoints with the VDS-shifted drain breakpoints
   into at most ``2k`` axis points;
2. evaluates ``g`` at each breakpoint (cheap Horner evaluations) and
   locates the sign change — ``g`` is strictly increasing because each
   fitted charge is non-increasing, so there is exactly one;
3. solves that single interval's polynomial with the closed forms of
   :mod:`repro.pwl.polynomials` — **no Newton-Raphson iterations and no
   Fermi-Dirac integrals**, which is the entire point of the paper.

A Brent fallback guards pathological fitted curves (e.g. a user-supplied
fit that is locally increasing); it never triggers for the paper's
models but keeps the solver total.

The hot path is deliberately plain Python floats + tuples (no numpy):
one solve costs a handful of Horner evaluations and one cubic formula,
which is what produces the three-orders-of-magnitude speed-up measured
in the Table I benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ParameterError, RootNotFoundError
from repro.physics.capacitance import TerminalCapacitances
from repro.pwl.polynomials import polyval, real_roots, shift_polynomial
from repro.pwl.regions import PiecewiseCharge
from repro.reference.solver import brent

#: acceptance slack (volts) for a closed-form root at a region edge
_EDGE_TOL = 1e-9


class ClosedFormSolver:
    """Closed-form VSC solver for a fitted charge curve.

    Parameters
    ----------
    qs_curve:
        Fitted source-side charge ``QS(VSC)`` [C/m].
    capacitances:
        Terminal capacitance partition (provides ``CSum`` and ``Qt``).

    Notes
    -----
    Per distinct ``VDS`` the merged breakpoint table and summed
    polynomial coefficients are cached — a family sweep revisits each
    drain bias once per gate voltage, so caching removes ~half the
    arithmetic of a sweep.
    """

    def __init__(self, qs_curve: PiecewiseCharge,
                 capacitances: TerminalCapacitances) -> None:
        self.qs_curve = qs_curve
        self.capacitances = capacitances
        self._csum = capacitances.csum
        if self._csum <= 0.0:
            raise ParameterError("CSum must be positive")
        # Scaled source curve: QS / CSum, ascending tuples.
        self._qs_bps: Tuple[float, ...] = qs_curve.breakpoints
        self._qs_polys: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(c / self._csum for c in coeffs)
            for coeffs in qs_curve.coefficients
        )
        self._vds_cache: Dict[float, Tuple[Tuple[float, ...],
                                           Tuple[Tuple[float, ...], ...]]] = {}

    # ------------------------------------------------------------------

    def _segments_for_vds(self, vds: float):
        """Merged breakpoints and per-interval polynomials of
        ``(QS(V) + QS(V + VDS)) / CSum`` (ascending coefficients)."""
        cached = self._vds_cache.get(vds)
        if cached is not None:
            return cached
        qs_bps = self._qs_bps
        qd_bps = tuple(b - vds for b in qs_bps)
        merged = sorted(set(qs_bps) | set(qd_bps))
        polys: List[Tuple[float, ...]] = []
        for i in range(len(merged) + 1):
            if i < len(merged):
                probe = merged[i] - 1e-12 if i == 0 else \
                    0.5 * (merged[i - 1] + merged[i])
                if i == 0:
                    probe = merged[0] - 1.0
            else:
                probe = merged[-1] + 1.0
            qs_poly = self._qs_polys[_region_of(qs_bps, probe)]
            qd_region = _region_of(qd_bps, probe)
            qd_poly_src = self._qs_polys[qd_region]
            # QD(V) = QS(V + vds): shift the source polynomial.
            qd_poly = tuple(shift_polynomial(qd_poly_src, vds))
            width = max(len(qs_poly), len(qd_poly))
            total = [0.0] * width
            for j, c in enumerate(qs_poly):
                total[j] += c
            for j, c in enumerate(qd_poly):
                total[j] += c
            polys.append(tuple(total))
        result = (tuple(merged), tuple(polys))
        if len(self._vds_cache) < 4096:
            self._vds_cache[vds] = result
        return result

    # ------------------------------------------------------------------

    def residual(self, vsc: float, vg: float, vd: float,
                 vs: float = 0.0) -> float:
        """``g(VSC)`` in volts (residual scaled by 1/CSum)."""
        vds = vd - vs
        qt_scaled = self.capacitances.terminal_charge(vg, vd, vs) / self._csum
        merged, polys = self._segments_for_vds(vds)
        poly = polys[_region_of(merged, vsc)]
        return vsc + qt_scaled - polyval(poly, vsc)

    def solve(self, vg: float, vd: float, vs: float = 0.0) -> float:
        """Self-consistent voltage at a bias point — closed form.

        Raises
        ------
        RootNotFoundError
            Only if the fitted curve is so ill-behaved that no root is
            found even by the safeguarded fallback.
        """
        vds = vd - vs
        qt_scaled = self.capacitances.terminal_charge(vg, vd, vs) / self._csum
        merged, polys = self._segments_for_vds(vds)

        # Residual at each breakpoint; find the sign-change interval.
        # g(V) = V + qt_scaled - poly(V) per interval.
        n = len(merged)
        prev_g = None
        interval = None
        for i in range(n):
            b = merged[i]
            g_b = b + qt_scaled - polyval(polys[i], b)
            if g_b >= 0.0 and (prev_g is None or prev_g < 0.0):
                interval = i
                break
            prev_g = g_b
        if interval is None:
            # Root is right of the last breakpoint (zero-charge region),
            # where QS = QD = 0 and g is exactly linear.
            interval = n
        lo = merged[interval - 1] if interval > 0 else None
        hi = merged[interval] if interval < n else None

        poly = polys[interval]
        # Equation: V + qt_scaled - poly(V) = 0.
        eq = list(poly)
        while len(eq) < 2:
            eq.append(0.0)
        eq = [-c for c in eq]
        eq[0] += qt_scaled
        eq[1] += 1.0
        roots = real_roots(eq)
        best = None
        for r in roots:
            if lo is not None and r < lo - _EDGE_TOL:
                continue
            if hi is not None and r > hi + _EDGE_TOL:
                continue
            if best is None or abs(self._residual_fast(
                    r, qt_scaled, merged, polys)) < abs(self._residual_fast(
                    best, qt_scaled, merged, polys)):
                best = r
        if best is not None:
            return best
        return self._fallback(vg, vd, vs, merged)

    def _residual_fast(self, vsc: float, qt_scaled: float,
                       merged: Sequence[float], polys) -> float:
        poly = polys[_region_of(merged, vsc)]
        return vsc + qt_scaled - polyval(poly, vsc)

    def _fallback(self, vg: float, vd: float, vs: float,
                  merged: Sequence[float]) -> float:
        """Brent fallback on an expanded bracket (defensive path)."""
        span = 1.0 + (merged[-1] - merged[0] if merged else 0.0)
        lo = (merged[0] if merged else 0.0) - span
        hi = (merged[-1] if merged else 0.0) + span

        def g(v: float) -> float:
            return self.residual(v, vg, vd, vs)

        for _ in range(40):
            if g(lo) < 0.0 and g(hi) > 0.0:
                root, _iters = brent(g, lo, hi)
                return root
            lo -= span
            hi += span
            span *= 2.0
        raise RootNotFoundError(
            f"no self-consistent voltage found for VG={vg}, VD={vd}, "
            f"VS={vs} in [{lo}, {hi}]"
        )


def _region_of(breakpoints: Sequence[float], x: float) -> int:
    """First index whose breakpoint is >= x (right-closed regions),
    via branch-light linear scan — breakpoint lists are tiny (<= 6)."""
    i = 0
    for b in breakpoints:
        if x <= b:
            return i
        i += 1
    return i
