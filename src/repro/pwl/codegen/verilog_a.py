"""Verilog-A emitter.

Same equivalent circuit as the VHDL-AMS flavour, phrased for
SPICE-class simulators that consume Verilog-A (Spectre, HSPICE, ngspice
with ADMS).  The inner node is an internal electrical node; the charge
balance is expressed as a contribution of charges so the simulator
handles both DC and transient consistently.
"""

from __future__ import annotations

from repro.pwl.codegen.common import (
    check_supported,
    header_comment,
    model_regions,
    polynomial_expression,
)
from repro.pwl.device import CNFET


def _charge_blocks(device: CNFET, var: str, target: str,
                   indent: str = "            ") -> str:
    lines = []
    first = True
    for upper, coeffs in model_regions(device):
        expr = polynomial_expression(coeffs, var)
        if upper == float("inf"):
            lines.append(f"{indent}else")
            lines.append(f"{indent}    {target} = {expr};")
        else:
            keyword = "if" if first else "else if"
            lines.append(f"{indent}{keyword} ({var} <= {upper:.10e})")
            lines.append(f"{indent}    {target} = {expr};")
            first = False
    return "\n".join(lines)


def generate_verilog_a(device: CNFET, module_name: str = "cnfet") -> str:
    """Emit a Verilog-A module for a fitted device."""
    check_supported(device)
    caps = device.capacitances
    kt = device.reference.kt_ev
    ef = device.params.fermi_level_ev
    prefactor = device._i_prefactor
    header = "\n".join(f"// {line}" for line in header_comment(
        device, "ports: (d, g, s); internal node: sigma"))
    qs_block = _charge_blocks(device, "vsc", "qs_val")
    qd_block = _charge_blocks(device, "vsd_arg", "qd_val")
    return f"""{header}

`include "constants.vams"
`include "disciplines.vams"

module {module_name}(d, g, s);
    inout d, g, s;
    electrical d, g, s;
    electrical sigma;  // inner node: self-consistent potential

    parameter real cg    = {caps.cg:.10e};  // F/m
    parameter real cd    = {caps.cd:.10e};  // F/m
    parameter real cs    = {caps.cs:.10e};  // F/m
    parameter real ef    = {ef:.10e};       // eV
    parameter real kt    = {kt:.10e};       // eV
    parameter real ipref = {prefactor:.10e};  // A

    real vsc, vsd_arg, qs_val, qd_val, eta_s, eta_d;

    analog begin
        vsc = V(sigma, s);
        vsd_arg = vsc + V(d, s);
{qs_block}
{qd_block}
        // Charge balance at the inner node (Fig. 1 equivalent circuit):
        I(sigma) <+ ddt(cg*V(sigma, g) + cd*V(sigma, d) + cs*V(sigma, s)
                        + qs_val + qd_val);
        // Resistive tie so the DC operating point satisfies the same
        // balance (scaled to conductance units):
        I(sigma) <+ 1.0e3 * (cg*V(sigma, g) + cd*V(sigma, d)
                             + cs*V(sigma, s) + qs_val + qd_val);
        // Ballistic drain current, eq. (14):
        eta_s = (ef - vsc)/kt;
        eta_d = (ef - vsc - V(d, s))/kt;
        I(d, s) <+ ipref * (ln(1.0 + exp(eta_s)) - ln(1.0 + exp(eta_d)));
    end
endmodule
"""
