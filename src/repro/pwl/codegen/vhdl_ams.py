"""VHDL-AMS emitter (the paper's released artefact, §VII).

Generates an ``entity`` + ``architecture`` pair implementing the Fig. 1
equivalent circuit: the inner node ``vsc`` is a free quantity whose
charge-balance equation is written directly (simultaneous statement);
the drain-source branch carries the closed-form ballistic current.
"""

from __future__ import annotations

from repro.pwl.codegen.common import (
    check_supported,
    header_comment,
    model_regions,
    polynomial_expression,
)
from repro.pwl.device import CNFET


def _charge_function(name: str, device: CNFET, indent: str = "    ") -> str:
    """A pure VHDL-AMS function evaluating the piecewise charge."""
    lines = [
        f"{indent}function {name}(v : real) return real is",
        f"{indent}begin",
    ]
    first = True
    for upper, coeffs in model_regions(device):
        expr = polynomial_expression(coeffs, "v")
        if upper == float("inf"):
            lines.append(f"{indent}    else")
            lines.append(f"{indent}        return {expr};")
        else:
            keyword = "if" if first else "elsif"
            lines.append(f"{indent}    {keyword} v <= {upper:.10e} then")
            lines.append(f"{indent}        return {expr};")
            first = False
    lines.append(f"{indent}    end if;")
    lines.append(f"{indent}end function {name};")
    return "\n".join(lines)


def generate_vhdl_ams(device: CNFET, entity_name: str = "cnfet") -> str:
    """Emit a complete VHDL-AMS model for a fitted device.

    The generated architecture solves the same equations as the Python
    device: charge balance at the inner node and eq. (14) for the drain
    current.
    """
    check_supported(device)
    caps = device.capacitances
    kt = device.reference.kt_ev
    ef = device.params.fermi_level_ev
    prefactor = device._i_prefactor  # documented internal reuse
    header = "\n".join(f"-- {line}" for line in header_comment(
        device, "interface: terminal d, g, s (electrical)"))
    charge_fn = _charge_function("q_mobile", device)
    return f"""{header}

library IEEE;
use IEEE.MATH_REAL.all;
use IEEE.ELECTRICAL_SYSTEMS.all;

entity {entity_name} is
    port (terminal d, g, s : electrical);
end entity {entity_name};

architecture pwl of {entity_name} is
    constant CG    : real := {caps.cg:.10e};  -- F/m
    constant CD    : real := {caps.cd:.10e};  -- F/m
    constant CS    : real := {caps.cs:.10e};  -- F/m
    constant CSUM  : real := {caps.csum:.10e};
    constant EF    : real := {ef:.10e};       -- eV
    constant KT    : real := {kt:.10e};       -- eV
    constant IPREF : real := {prefactor:.10e};  -- A
{charge_fn}
    quantity vg_q across g to s;
    quantity vd_q across d to s;
    quantity ids_q through d to s;
    quantity vsc : voltage;
begin
    -- Self-consistent charge balance at the inner node (closed under
    -- the piecewise approximation; the simulator's DAE solver sees a
    -- polynomial residual of degree <= 3):
    0.0 == CSUM*vsc + CG*vg_q + CD*vd_q
           - q_mobile(vsc) - q_mobile(vsc + vd_q);
    -- Ballistic drain current, eq. (14):
    ids_q == IPREF * (log(1.0 + exp((EF - vsc)/KT))
                      - log(1.0 + exp((EF - vsc - vd_q)/KT)));
end architecture pwl;
"""
