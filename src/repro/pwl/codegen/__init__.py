"""HDL code generation for fitted CNFET models.

The paper's §VII released a VHDL-AMS implementation of Model 2 through
the Southampton VHDL-AMS validation suite; this package regenerates that
artefact from any fitted device, plus Verilog-A and SPICE-subcircuit
flavours for other simulators.

All emitters consume a :class:`repro.pwl.device.CNFET` (or a
:class:`repro.pwl.fitting.FittedCharge` + capacitances) and produce a
self-contained source string: the piecewise charge polynomials, the
closed-form current expression, and the terminal capacitance network of
the paper's Fig. 1.
"""

from repro.pwl.codegen.spice_subckt import generate_spice_subcircuit
from repro.pwl.codegen.verilog_a import generate_verilog_a
from repro.pwl.codegen.vhdl_ams import generate_vhdl_ams

__all__ = [
    "generate_vhdl_ams",
    "generate_verilog_a",
    "generate_spice_subcircuit",
]
