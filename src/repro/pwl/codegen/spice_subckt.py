"""SPICE subcircuit emitter.

Plain SPICE has no piecewise polynomial primitive, so the subcircuit
uses behavioural sources (B elements, ngspice syntax): the inner node's
charge balance becomes a behavioural current into a unit resistor and
the drain current a behavioural source between drain and source.  Region
selection uses the ternary operator available in ngspice/Xyce
expressions.
"""

from __future__ import annotations

from repro.pwl.codegen.common import (
    check_supported,
    header_comment,
    model_regions,
    polynomial_expression,
)
from repro.pwl.device import CNFET


def _nested_ternary(device: CNFET, var: str) -> str:
    """Region selection as a right-nested ternary expression."""
    regions = model_regions(device)
    expr = polynomial_expression(regions[-1][1], var)
    for upper, coeffs in reversed(regions[:-1]):
        branch = polynomial_expression(coeffs, var)
        expr = f"({var} <= {upper:.10e}) ? ({branch}) : ({expr})"
    return expr


def generate_spice_subcircuit(device: CNFET,
                              subckt_name: str = "cnfet") -> str:
    """Emit an ngspice-flavoured behavioural subcircuit."""
    check_supported(device)
    caps = device.capacitances
    kt = device.reference.kt_ev
    ef = device.params.fermi_level_ev
    prefactor = device._i_prefactor
    header = "\n".join(f"* {line}" for line in header_comment(
        device, "nodes: d g s; internal: sigma"))
    qs_expr = _nested_ternary(device, "v(sigma)")
    qd_expr = _nested_ternary(device, "(v(sigma)+v(d,s))")
    return f"""{header}
.subckt {subckt_name} d g s
* Inner-node charge balance: drive sigma so the residual vanishes.
* residual (C/m): csum*vsc + cg*vg + cd*vd - qs(vsc) - qd(vsc+vds)
Bres sigma 0 I = ( {caps.csum:.10e}*v(sigma)
+   + {caps.cg:.10e}*v(g) + {caps.cd:.10e}*v(d)
+   - ({qs_expr})
+   - ({qd_expr}) ) * 1e6
Rres sigma 0 1
* Ballistic drain current, eq. (14):
Bids d s I = {prefactor:.10e} *
+  ( ln(1 + exp(({ef:.10e} - v(sigma))/{kt:.10e}))
+  - ln(1 + exp(({ef:.10e} - v(sigma) - v(d,s))/{kt:.10e})) )
.ends {subckt_name}
"""
