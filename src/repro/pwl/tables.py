"""Pre-fitted coefficient tables over a (temperature, Fermi level) grid.

The paper fits its models "over the temperature range 150K <= T <= 450K
and Fermi level range -0.5 eV <= EF <= 0 V".  A circuit simulator does
not want to re-run the theoretical integrals for every device instance,
so this module provides:

* :class:`PrefittedLibrary` — fits a grid of (T, EF) points once and
  serves :class:`~repro.pwl.fitting.FittedCharge` objects, either the
  nearest grid entry or a bilinear interpolation of the region
  coefficients (boundaries track EF exactly, so interpolating
  *relative-coordinate* coefficients is well conditioned);
* JSON (de)serialisation so a library can be shipped with a design kit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ParameterError
from repro.pwl.fitting import FitSpec, FittedCharge, fit_piecewise_charge
from repro.pwl.model1 import MODEL1_SPEC
from repro.pwl.model2 import MODEL2_SPEC
from repro.pwl.polynomials import shift_polynomial
from repro.pwl.regions import PiecewiseCharge
from repro.reference.fettoy import FETToyModel, FETToyParameters

_NAMED = {"model1": MODEL1_SPEC, "model2": MODEL2_SPEC}


def _to_relative(curve: PiecewiseCharge, ef: float) -> List[List[float]]:
    """Region polynomials re-centred on EF (coefficients in x - EF)."""
    return [list(shift_polynomial(c, ef)) for c in curve.coefficients]


def _from_relative(coeffs_rel: Sequence[Sequence[float]],
                   breakpoints_rel: Sequence[float],
                   ef: float) -> PiecewiseCharge:
    abs_coeffs = tuple(
        tuple(shift_polynomial(c, -ef)) for c in coeffs_rel
    )
    abs_bps = tuple(b + ef for b in breakpoints_rel)
    return PiecewiseCharge(abs_bps, abs_coeffs)


@dataclass(frozen=True)
class _GridEntry:
    temperature_k: float
    fermi_level_ev: float
    breakpoints_rel: Tuple[float, ...]
    coeffs_rel: Tuple[Tuple[float, ...], ...]
    rms_error_relative: float


class PrefittedLibrary:
    """Grid of pre-fitted charge approximations for one device geometry.

    Parameters
    ----------
    base_params:
        Device geometry (diameter, oxide, alphas); temperature and Fermi
        level are swept over the grid.
    model:
        ``"model1"``, ``"model2"`` or a custom spec.
    temperatures_k, fermi_levels_ev:
        Grid axes.  Defaults cover the paper's stated ranges.
    optimize_boundaries:
        Refine boundaries at each grid point (slower build, better fits).
    """

    def __init__(
        self,
        base_params: FETToyParameters = FETToyParameters(),
        model: Union[str, FitSpec] = "model2",
        temperatures_k: Sequence[float] = (150.0, 225.0, 300.0, 375.0, 450.0),
        fermi_levels_ev: Sequence[float] = (-0.5, -0.375, -0.25, -0.125, 0.0),
        optimize_boundaries: bool = True,
        build: bool = True,
    ) -> None:
        self.base_params = base_params
        self.spec = _NAMED[model] if isinstance(model, str) else model
        self.temperatures_k = tuple(sorted(float(t) for t in temperatures_k))
        self.fermi_levels_ev = tuple(sorted(float(e) for e in fermi_levels_ev))
        if len(set(self.temperatures_k)) != len(self.temperatures_k):
            raise ParameterError("duplicate grid temperatures")
        if len(set(self.fermi_levels_ev)) != len(self.fermi_levels_ev):
            raise ParameterError("duplicate grid Fermi levels")
        self.optimize_boundaries = optimize_boundaries
        self._entries: Dict[Tuple[float, float], _GridEntry] = {}
        if build:
            self.build()

    # ------------------------------------------------------------------

    def build(self) -> None:
        """Fit every grid point (idempotent)."""
        for t in self.temperatures_k:
            for ef in self.fermi_levels_ev:
                if (t, ef) in self._entries:
                    continue
                self._entries[(t, ef)] = self._fit_point(t, ef)

    def _fit_point(self, temperature_k: float,
                   fermi_level_ev: float) -> _GridEntry:
        params = self.base_params.with_updates(
            temperature_k=temperature_k, fermi_level_ev=fermi_level_ev
        )
        reference = FETToyModel(params)
        fitted = fit_piecewise_charge(
            reference.charge, self.spec,
            optimize_boundaries=self.optimize_boundaries,
        )
        return _GridEntry(
            temperature_k=temperature_k,
            fermi_level_ev=fermi_level_ev,
            breakpoints_rel=tuple(
                b - fermi_level_ev for b in fitted.curve.breakpoints
            ),
            coeffs_rel=tuple(
                tuple(c) for c in _to_relative(fitted.curve, fermi_level_ev)
            ),
            rms_error_relative=fitted.rms_error_relative,
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def nearest(self, temperature_k: float,
                fermi_level_ev: float) -> FittedCharge:
        """Fitted curve of the nearest grid point, re-anchored at the
        requested Fermi level."""
        t = min(self.temperatures_k, key=lambda x: abs(x - temperature_k))
        ef_grid = min(self.fermi_levels_ev,
                      key=lambda x: abs(x - fermi_level_ev))
        entry = self._entries[(t, ef_grid)]
        return self._materialise(entry, temperature_k, fermi_level_ev)

    def interpolated(self, temperature_k: float,
                     fermi_level_ev: float) -> FittedCharge:
        """Bilinear interpolation of relative-coordinate coefficients.

        Requires the query point to lie inside the grid's bounding box.
        Breakpoints and coefficients are interpolated independently —
        valid because all grid entries share the same region layout.
        """
        t_axis, e_axis = self.temperatures_k, self.fermi_levels_ev
        if not (t_axis[0] <= temperature_k <= t_axis[-1]):
            raise ParameterError(
                f"T={temperature_k} outside grid [{t_axis[0]}, {t_axis[-1]}]"
            )
        if not (e_axis[0] <= fermi_level_ev <= e_axis[-1]):
            raise ParameterError(
                f"EF={fermi_level_ev} outside grid "
                f"[{e_axis[0]}, {e_axis[-1]}]"
            )
        t0, t1 = _bracket_axis(t_axis, temperature_k)
        e0, e1 = _bracket_axis(e_axis, fermi_level_ev)
        wt = 0.0 if t1 == t0 else (temperature_k - t0) / (t1 - t0)
        we = 0.0 if e1 == e0 else (fermi_level_ev - e0) / (e1 - e0)
        corners = [
            (self._entries[(t0, e0)], (1 - wt) * (1 - we)),
            (self._entries[(t1, e0)], wt * (1 - we)),
            (self._entries[(t0, e1)], (1 - wt) * we),
            (self._entries[(t1, e1)], wt * we),
        ]
        n_regions = len(corners[0][0].coeffs_rel)
        bps = [0.0] * (n_regions - 1)
        coeffs = [
            [0.0] * len(corners[0][0].coeffs_rel[r]) for r in range(n_regions)
        ]
        rms = 0.0
        for entry, w in corners:
            rms += w * entry.rms_error_relative
            for i, b in enumerate(entry.breakpoints_rel):
                bps[i] += w * b
            for r in range(n_regions):
                for i, c in enumerate(entry.coeffs_rel[r]):
                    coeffs[r][i] += w * c
        synthetic = _GridEntry(
            temperature_k=temperature_k,
            fermi_level_ev=fermi_level_ev,
            breakpoints_rel=tuple(bps),
            coeffs_rel=tuple(tuple(c) for c in coeffs),
            rms_error_relative=rms,
        )
        return self._materialise(synthetic, temperature_k, fermi_level_ev)

    def _materialise(self, entry: _GridEntry, temperature_k: float,
                     fermi_level_ev: float) -> FittedCharge:
        curve = _from_relative(
            entry.coeffs_rel, entry.breakpoints_rel, fermi_level_ev
        )
        return FittedCharge(
            curve=curve,
            spec=self.spec,
            fermi_level_ev=fermi_level_ev,
            temperature_k=temperature_k,
            rms_error=float("nan"),
            rms_error_relative=entry.rms_error_relative,
            boundaries_abs=curve.breakpoints,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "spec": {
                "orders": list(self.spec.orders),
                "boundaries_rel": list(self.spec.boundaries_rel),
                "window_rel": list(self.spec.window_rel),
                "samples": self.spec.samples,
                "name": self.spec.name,
            },
            "temperatures_k": list(self.temperatures_k),
            "fermi_levels_ev": list(self.fermi_levels_ev),
            "optimize_boundaries": self.optimize_boundaries,
            "entries": [
                {
                    "t": e.temperature_k,
                    "ef": e.fermi_level_ev,
                    "breakpoints_rel": list(e.breakpoints_rel),
                    "coeffs_rel": [list(c) for c in e.coeffs_rel],
                    "rms": e.rms_error_relative,
                }
                for e in self._entries.values()
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str,
                  base_params: FETToyParameters = FETToyParameters()
                  ) -> "PrefittedLibrary":
        payload = json.loads(text)
        spec = FitSpec(
            orders=tuple(payload["spec"]["orders"]),
            boundaries_rel=tuple(payload["spec"]["boundaries_rel"]),
            window_rel=tuple(payload["spec"]["window_rel"]),
            samples=payload["spec"]["samples"],
            name=payload["spec"]["name"],
        )
        lib = cls(
            base_params=base_params,
            model=spec,
            temperatures_k=payload["temperatures_k"],
            fermi_levels_ev=payload["fermi_levels_ev"],
            optimize_boundaries=payload["optimize_boundaries"],
            build=False,
        )
        for raw in payload["entries"]:
            entry = _GridEntry(
                temperature_k=raw["t"],
                fermi_level_ev=raw["ef"],
                breakpoints_rel=tuple(raw["breakpoints_rel"]),
                coeffs_rel=tuple(tuple(c) for c in raw["coeffs_rel"]),
                rms_error_relative=raw["rms"],
            )
            lib._entries[(entry.temperature_k, entry.fermi_level_ev)] = entry
        return lib

    def __len__(self) -> int:
        return len(self._entries)


def _bracket_axis(axis: Sequence[float], x: float) -> Tuple[float, float]:
    arr = np.asarray(axis)
    idx = int(np.searchsorted(arr, x))
    if idx == 0:
        return axis[0], axis[0]
    if x == axis[idx - 1]:
        return axis[idx - 1], axis[idx - 1]
    if idx >= len(axis):
        return axis[-1], axis[-1]
    return axis[idx - 1], axis[idx]
