"""Pure-numpy kernel tier — the byte-identical reference.

These are the vectorized implementations the engine has always run
(moved here verbatim from ``StackedVscSolver.solve``,
``_StackedCNFETBank._companion`` and the ``add_flat`` stamping
primitives), so selecting ``kernels="numpy"`` reproduces the historical
waveforms bit for bit.  The compiled tiers
(:mod:`repro.pwl.kernels.cc_backend`,
:mod:`repro.pwl.kernels.numba_backend`) mirror this arithmetic lane by
lane; see :doc:`/kernels` for the parity contract.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.pwl.batch import (
    _STACK_EDGE_TOL,
    _STACK_RESIDUAL_TOL,
    _STACK_VDS_QUANTUM,
    _STACK_VDS_SCALE,
    polyval4,
    real_roots_batch,
)


class NumpyKernelBackend:
    """Reference kernel tier: vectorized numpy, no compilation."""

    name = "numpy"
    #: True for tiers whose kernels are compiled (numba / cc)
    compiled = False

    # -- kernel 1: stacked VSC solve -----------------------------------

    def vsc_solve(self, solver, rows: np.ndarray,
                  idx: Optional[np.ndarray], vgs: np.ndarray,
                  vds: np.ndarray, hint: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
        """Two hint-warmed attempts for every selected lane; fills
        ``out`` and returns the selection positions that still need the
        scalar fallback."""
        bps = solver.bps[rows] if idx is not None else solver.bps
        sub = np.arange(len(rows)) if idx is not None else rows
        n = len(rows)
        vds_q = np.floor(vds * _STACK_VDS_SCALE + 0.5) * _STACK_VDS_QUANTUM
        qt = (solver.cg[rows] * vgs + solver.cd[rows] * vds) \
            / solver.csum[rows]
        ok = np.zeros(n, dtype=bool)
        probe_s = hint[rows]
        probe_d = probe_s + vds_q
        old_err = np.seterr(invalid="ignore", divide="ignore",
                            over="ignore")
        try:
            for _attempt in range(2):
                i_s = (bps < probe_s[:, None]).sum(axis=1)
                i_d = (bps < probe_d[:, None]).sum(axis=1)
                qs = solver.polys[rows, i_s]
                qd = solver.polys[rows, i_d]
                # Taylor shift of the drain polynomial by the quantized
                # VDS (the scalar path shifts by the same quantized
                # value inside ``_segments_for_vds``).
                d = vds_q
                s0 = qd[:, 0] + d * (qd[:, 1] + d * (qd[:, 2]
                                                     + d * qd[:, 3]))
                s1 = qd[:, 1] + d * (2.0 * qd[:, 2] + 3.0 * d * qd[:, 3])
                s2 = qd[:, 2] + 3.0 * d * qd[:, 3]
                s3 = qd[:, 3]
                e0 = qt - (qs[:, 0] + s0)
                e1 = 1.0 - (qs[:, 1] + s1)
                e2 = -(qs[:, 2] + s2)
                e3 = -(qs[:, 3] + s3)
                roots = real_roots_batch(e0, e1, e2, e3)
                lo = np.maximum(solver.lo_edges[rows, i_s],
                                solver.lo_edges[rows, i_d] - vds_q)
                hi = np.minimum(solver.hi_edges[rows, i_s],
                                solver.hi_edges[rows, i_d] - vds_q)
                inside = (roots >= (lo - _STACK_EDGE_TOL)[:, None]) \
                    & (roots <= (hi + _STACK_EDGE_TOL)[:, None])
                res = np.abs(polyval4(e0[:, None], e1[:, None],
                                      e2[:, None], e3[:, None], roots))
                res = np.where(inside & np.isfinite(res), res, np.inf)
                pick = res.argmin(axis=1)
                best = roots[sub, pick]
                good = ~ok & (res[sub, pick] <= _STACK_RESIDUAL_TOL)
                out[good] = best[good]
                ok |= good
                if ok.all():
                    break
                # Refinement: re-derive the region pair from the best
                # candidate (handles single-region drift in one pass).
                probe_s = np.where(np.isfinite(best) & ~ok, best, probe_s)
                probe_d = probe_s + vds_q
        finally:
            np.seterr(**old_err)
        return np.flatnonzero(~ok)

    # -- kernel 2: stacked companion bank evaluation -------------------

    def cnfet_companion(self, bank, didx: np.ndarray, vsc: np.ndarray,
                        vgs: np.ndarray, vds: np.ndarray, gmin: float,
                        tran: bool, dt: Optional[float]
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked companion stamp values around the given biases (see
        ``_StackedCNFETBank._companion`` for the kind-row table)."""
        from repro.circuit.elements.cnfet import _logistic_many
        from repro.pwl.device import _log1pexp_many

        sign = bank.sign[didx]
        kt = bank.kt[didx]
        eta_s = (bank.ef[didx] - vsc) / kt
        eta_d = eta_s - vds / kt
        pref = bank.pref[didx]
        ids = pref * (_log1pexp_many(eta_s) - _log1pexp_many(eta_d))
        sig_s = _logistic_many(eta_s)
        sig_d = _logistic_many(eta_d)
        di_dvsc = (pref / kt) * (sig_d - sig_s)
        dq_s = bank.curves.derivative(vsc, idx=didx)
        dq_d = bank.curves.derivative(vsc + vds, idx=didx)
        cg, cd = bank.cg[didx], bank.cd[didx]
        denominator = bank.csum[didx] - dq_s - dq_d
        dvsc_g = -cg / denominator
        dvsc_d = -(cd - dq_d) / denominator
        gm = di_dvsc * dvsc_g
        gds = (pref / kt) * sig_d + di_dvsc * dvsc_d
        residual = sign * ids - gm * sign * vgs - gds * sign * vds
        n_kinds = 17 if tran else 8
        values = np.empty((n_kinds, didx.size))
        values[0] = gm
        values[1] = -(gm + gmin)
        values[2] = gds + gmin
        values[3] = gm + gds + 2.0 * gmin
        values[4] = -(gm + gds + gmin)
        values[5] = -(gds + gmin)
        values[6] = gmin
        values[7] = -gmin
        rhs_values = np.empty((5 if tran else 2, didx.size))
        rhs_values[0] = -residual
        rhs_values[1] = residual
        if tran:
            # Charge companions (vectorized ``_stamp_charges``).
            length = bank.length[didx]
            q_d_mobile = bank.curves.value(vsc + vds, idx=didx)
            qg = length * cg * (vgs + vsc)
            qd = length * (cd * (vds + vsc) - q_d_mobile)
            q0 = (qg, qd, -(qg + qd))
            dg_gs = length * cg * (1.0 + dvsc_g)
            dg_ds = length * cg * dvsc_d
            dd_gs = length * dvsc_g * (cd - dq_d)
            dd_ds = length * (1.0 + dvsc_d) * (cd - dq_d)
            dq_dvgs = (dg_gs, dd_gs, -(dg_gs + dd_gs))
            dq_dvds = (dg_ds, dd_ds, -(dg_ds + dd_ds))
            for t_idx in range(3):
                geq_gs = dq_dvgs[t_idx] / dt
                geq_ds = dq_dvds[t_idx] / dt
                i_now = (q0[t_idx] - bank.q_prev[t_idx, didx]) / dt
                row = 8 + 3 * t_idx
                values[row] = geq_gs
                values[row + 1] = geq_ds
                values[row + 2] = -(geq_gs + geq_ds)
                rhs_values[2 + t_idx] = -(
                    sign * i_now - geq_gs * sign * vgs
                    - geq_ds * sign * vds
                )
        return values, rhs_values

    # -- kernel 3: scatter-add stamping --------------------------------

    def scatter_add_pad(self, out: np.ndarray, m_idx: np.ndarray,
                        m_val: np.ndarray) -> None:
        """``out[m_idx] += m_val`` with index ``out.size`` (and above)
        as a discard pad — the historical two-bincount scatter."""
        size = out.size
        out += np.bincount(m_idx, weights=m_val,
                           minlength=size + 1)[:size]

    def triplet_append(self, m_idx: np.ndarray, m_val: np.ndarray,
                       dim2: int, out_idx: np.ndarray,
                       out_val: np.ndarray, offset: int) -> int:
        """Append triplets below the ``dim2`` pad at ``offset``;
        returns the count kept.  Caller guarantees capacity."""
        keep = m_idx < dim2
        idx, val = m_idx[keep], m_val[keep]
        out_idx[offset:offset + idx.size] = idx
        out_val[offset:offset + idx.size] = val
        return int(idx.size)

    def scatter_accum(self, base: np.ndarray, map_idx: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        """``base + scatter(map_idx, values)`` — the dynamic-value
        scatter of the sparse assembler (``base`` is not mutated)."""
        return base + np.bincount(map_idx, weights=values,
                                  minlength=base.size)
