"""Compiled kernel tier backed by a C shared library.

The C source (``_kernels.c``, pure C99 + libm) is compiled **on
demand** with the system C compiler into a cache directory and loaded
through :mod:`ctypes` — no build-time extension machinery, no runtime
dependency beyond a compiler being present once.  The build is keyed
by a hash of the source, so editing ``_kernels.c`` transparently
rebuilds; concurrent builds are safe (compile to a unique temp name,
``os.replace`` into place).

Float contraction is disabled (``-ffp-contract=off``): FMA fusion
would change the rounding sequence relative to the numpy reference
the parity suite compares against.  Remaining differences come from
libm-vs-SIMD transcendentals (a few ulp) and are bounded engine-side
by the residual validation and the <= 1e-12 V waveform parity gate.

``build_library`` raises :class:`KernelBuildError` when no compiler is
available; :func:`repro.pwl.kernels.resolve_kernel_backend` treats
that as "tier unavailable" and falls back to numpy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np


class KernelBuildError(RuntimeError):
    """The compiled kernel library could not be built or loaded."""


_SOURCE = Path(__file__).resolve().parent / "_kernels.c"
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_lib: Optional[ctypes.CDLL] = None
_build_error: Optional[str] = None


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "repro-kernels"


def build_library(force: bool = False) -> ctypes.CDLL:
    """Compile (if needed) and load the kernel shared library."""
    global _lib, _build_error
    if _lib is not None and not force:
        return _lib
    if _build_error is not None and not force:
        raise KernelBuildError(_build_error)
    try:
        _lib = _build_library()
        _build_error = None
        return _lib
    except KernelBuildError as exc:
        _build_error = str(exc)
        raise


def _build_library() -> ctypes.CDLL:
    if not _SOURCE.exists():
        raise KernelBuildError(f"kernel source missing: {_SOURCE}")
    source = _SOURCE.read_bytes()
    key = hashlib.sha256(
        source + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"repro_kernels_{key}.so"
    if not lib_path.exists():
        cc = _compiler()
        if cc is None:
            raise KernelBuildError(
                "no C compiler found (set $CC, or install gcc/clang)")
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise KernelBuildError(
                f"cannot create kernel cache {cache}: {exc}") from exc
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        cmd = [cc, *_CFLAGS, str(_SOURCE), "-o", tmp, "-lm"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except (OSError, subprocess.TimeoutExpired) as exc:
            os.unlink(tmp)
            raise KernelBuildError(f"kernel compile failed: {exc}") from exc
        if proc.returncode != 0:
            os.unlink(tmp)
            raise KernelBuildError(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr}")
        os.replace(tmp, lib_path)
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise KernelBuildError(
            f"cannot load kernel library {lib_path}: {exc}") from exc
    _declare(lib)
    return lib


def _declare(lib: ctypes.CDLL) -> None:
    c_idx = ctypes.c_int64
    p_d = ctypes.POINTER(ctypes.c_double)
    p_i = ctypes.POINTER(ctypes.c_int64)
    lib.stacked_vsc_solve.restype = c_idx
    lib.stacked_vsc_solve.argtypes = [
        c_idx, p_i, p_d, p_d, p_d, p_d, p_d, p_d, p_d, p_d, p_d,
        c_idx, p_d, p_d, p_i,
    ]
    lib.cnfet_companion.restype = None
    lib.cnfet_companion.argtypes = [
        c_idx, p_i, p_d, p_d, p_d, p_d, p_d, p_d, p_d, p_d, p_d, p_d,
        p_d, p_d, p_d, p_d, c_idx, c_idx, p_d,
        ctypes.c_double, ctypes.c_int, ctypes.c_double, p_d, p_d,
    ]
    lib.scatter_add_pad.restype = None
    lib.scatter_add_pad.argtypes = [p_d, c_idx, p_i, p_d, c_idx]
    lib.triplet_append.restype = c_idx
    lib.triplet_append.argtypes = [p_i, p_d, c_idx, c_idx, p_i, p_d]
    lib.scatter_accum.restype = None
    lib.scatter_accum.argtypes = [p_d, p_i, p_d, c_idx]
    lib.lu_refactor.restype = c_idx
    lib.lu_refactor.argtypes = [
        c_idx, p_i, p_i, p_d, p_i, p_i,
        p_i, p_i, p_d, p_i, p_i, p_d, p_d,
    ]
    lib.lu_solve_factored.restype = None
    lib.lu_solve_factored.argtypes = [
        c_idx, p_i, p_i, p_d, p_i, p_i, p_d, p_i, p_i, p_d, p_d, p_d,
    ]
    lib.csc_residual_inf.restype = ctypes.c_double
    lib.csc_residual_inf.argtypes = [c_idx, p_i, p_i, p_d, p_d, p_d, p_d]


_P_D = ctypes.POINTER(ctypes.c_double)
_P_I = ctypes.POINTER(ctypes.c_int64)


def _pd(a: np.ndarray):
    return a.ctypes.data_as(_P_D)


def _pi(a: np.ndarray):
    return a.ctypes.data_as(_P_I)


def _as_f64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def _as_i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


class _PtrCache:
    """Identity-keyed LRU of ctypes pointers.

    ``ndarray.ctypes.data_as`` costs ~8 us per call; a hot solve
    marshals ~20 *persistent* arrays (solver/bank parameter tables)
    per Newton iteration, so their pointers are cached by object
    identity.  The cache holds a strong reference to each keyed array,
    which both pins the buffer and keeps the id stable; per-call
    arrays simply churn through the LRU tail.
    """

    def __init__(self, cap: int = 128) -> None:
        self._cap = cap
        self._map: "OrderedDict" = OrderedDict()

    def _get(self, a: np.ndarray, typ):
        key = (id(a), typ is _P_I)
        hit = self._map.get(key)
        if hit is not None and hit[0] is a:
            self._map.move_to_end(key)
            return hit[1]
        p = a.ctypes.data_as(typ)
        self._map[key] = (a, p)
        if len(self._map) > self._cap:
            self._map.popitem(last=False)
        return p

    def pd(self, a: np.ndarray):
        return self._get(a, _P_D)

    def pi(self, a: np.ndarray):
        return self._get(a, _P_I)


class CcKernelBackend:
    """Compiled kernel tier: per-lane C loops through ctypes."""

    name = "cc"
    compiled = True

    def __init__(self) -> None:
        self._lib = build_library()
        self._ptrs = _PtrCache()

    # -- kernel 1: stacked VSC solve -----------------------------------

    def vsc_solve(self, solver, rows: np.ndarray, idx, vgs: np.ndarray,
                  vds: np.ndarray, hint: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
        n = len(rows)
        rows64 = _as_i64(rows)
        vgs = _as_f64(vgs)
        vds = _as_f64(vds)
        bad = np.empty(n, dtype=np.int64)
        cp = self._ptrs
        n_bad = self._lib.stacked_vsc_solve(
            n, cp.pi(rows64), _pd(vgs), _pd(vds),
            cp.pd(solver.bps), cp.pd(solver.lo_edges),
            cp.pd(solver.hi_edges), cp.pd(solver.polys),
            cp.pd(solver.cg), cp.pd(solver.cd),
            cp.pd(solver.csum), solver.bps.shape[1],
            cp.pd(hint), _pd(out), _pi(bad),
        )
        return bad[:n_bad]

    # -- kernel 2: stacked companion bank evaluation -------------------

    def cnfet_companion(self, bank, didx: np.ndarray, vsc: np.ndarray,
                        vgs: np.ndarray, vds: np.ndarray, gmin: float,
                        tran: bool, dt
                        ) -> Tuple[np.ndarray, np.ndarray]:
        n = didx.size
        didx64 = _as_i64(didx)
        vsc = _as_f64(vsc)
        vgs = _as_f64(vgs)
        vds = _as_f64(vds)
        curves = bank.curves
        values = np.empty((17 if tran else 8, n))
        rhs_values = np.empty((5 if tran else 2, n))
        cp = self._ptrs
        self._lib.cnfet_companion(
            n, cp.pi(didx64), _pd(vsc), _pd(vgs), _pd(vds),
            cp.pd(bank.sign), cp.pd(bank.length), cp.pd(bank.kt),
            cp.pd(bank.ef), cp.pd(bank.pref), cp.pd(bank.cg),
            cp.pd(bank.cd), cp.pd(bank.csum),
            cp.pd(curves.bps), cp.pd(curves.coeffs),
            cp.pd(curves.dcoeffs),
            curves.bps.shape[0], curves.bps.shape[1],
            cp.pd(bank.q_prev),
            float(gmin), int(bool(tran)),
            float(dt) if dt is not None else 0.0,
            _pd(values), _pd(rhs_values),
        )
        return values, rhs_values

    # -- kernel 3: scatter-add stamping --------------------------------

    def scatter_add_pad(self, out: np.ndarray, m_idx: np.ndarray,
                        m_val: np.ndarray) -> None:
        m_idx = _as_i64(m_idx)
        m_val = _as_f64(m_val)
        self._lib.scatter_add_pad(_pd(out), out.size, _pi(m_idx),
                                  _pd(m_val), m_idx.size)

    def triplet_append(self, m_idx: np.ndarray, m_val: np.ndarray,
                       dim2: int, out_idx: np.ndarray,
                       out_val: np.ndarray, offset: int) -> int:
        m_idx = _as_i64(m_idx)
        m_val = _as_f64(m_val)
        kept = self._lib.triplet_append(
            _pi(m_idx), _pd(m_val), m_idx.size, dim2,
            _pi(out_idx[offset:]), _pd(out_val[offset:]),
        )
        return int(kept)

    def scatter_accum(self, base: np.ndarray, map_idx: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        data = base.copy()
        map_idx = _as_i64(map_idx)
        values = _as_f64(values)
        self._lib.scatter_accum(_pd(data), _pi(map_idx), _pd(values),
                                map_idx.size)
        return data

    # -- kernel 4: frozen-pivot LU refactorization ---------------------

    def lu_refactor(self, sym, data: np.ndarray) -> int:
        """Numeric refactorization into ``sym``'s L/U buffers.

        ``sym`` is the symbolic-factorization record built by
        :class:`repro.circuit.solvers.SparseBackend` (frozen patterns,
        permutations and value buffers, all int64 / float64
        contiguous).  Returns 0 on success, a 1-based column index on
        a zero pivot — the caller refreshes the symbolics.
        """
        cp = self._ptrs
        return int(self._lib.lu_refactor(
            sym.n, cp.pi(sym.indptr), cp.pi(sym.indices), _pd(data),
            cp.pi(sym.pr), cp.pi(sym.pcinv),
            cp.pi(sym.lp), cp.pi(sym.li), cp.pd(sym.lx),
            cp.pi(sym.up), cp.pi(sym.ui), cp.pd(sym.ux),
            cp.pd(sym.work)))

    def lu_solve(self, sym, rhs: np.ndarray) -> np.ndarray:
        """Permute-forward-backward solve from ``lu_refactor``."""
        rhs = _as_f64(rhs)
        out = np.empty(sym.n)
        cp = self._ptrs
        self._lib.lu_solve_factored(
            sym.n, cp.pi(sym.lp), cp.pi(sym.li), cp.pd(sym.lx),
            cp.pi(sym.up), cp.pi(sym.ui), cp.pd(sym.ux),
            cp.pi(sym.prinv), cp.pi(sym.pc),
            _pd(rhs), _pd(out), cp.pd(sym.work))
        return out

    def csc_residual(self, sym, data: np.ndarray, x: np.ndarray,
                     rhs: np.ndarray) -> float:
        """``max|A x - rhs|`` — the staleness guard of the lane."""
        x = _as_f64(x)
        rhs = _as_f64(rhs)
        cp = self._ptrs
        return float(self._lib.csc_residual_inf(
            sym.n, cp.pi(sym.indptr), cp.pi(sym.indices), _pd(data),
            _pd(x), _pd(rhs), cp.pd(sym.work)))
