"""Compiled kernel tier backed by numba ``@njit`` loops.

Importing this module raises :class:`ImportError` when numba is not
installed; :func:`repro.pwl.kernels.resolve_kernel_backend` treats that
as "tier unavailable" and tries the C tier next.  The jitted loops
mirror :mod:`repro.pwl.kernels._kernels.c` lane for lane (hint-warmed
region solve with residual-argmin parity, companion bank fill,
scatter-add stamping); like the C tier, transcendental results may
differ from numpy's SIMD ufuncs at the ulp level, bounded engine-side
by the residual validation and the <= 1e-12 V parity gate.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from numba import njit  # noqa: F401  (ImportError => tier unavailable)

_EPS = float(np.finfo(float).eps)
_DEGREE_TOL = 1e-14
_RESIDUAL_TOL = 1e-12
_EDGE_TOL = 1e-9
_VDS_QUANTUM = 1e-12
_VDS_SCALE = 1.0 / _VDS_QUANTUM
_PHI1 = 2.0943951023931953
_PHI2 = 4.1887902047863905

_FAST = dict(cache=True, fastmath=False, nogil=True)


@njit(**_FAST)
def _real_roots_scalar(c0, c1, c2, c3, roots):
    """NaN-padded real roots of one cubic (twin of
    ``real_roots_batch`` restricted to a single lane)."""
    roots[0] = np.nan
    roots[1] = np.nan
    roots[2] = np.nan
    scale = max(max(abs(c0), abs(c1)), max(abs(c2), abs(c3)))
    tol = _DEGREE_TOL * scale
    if abs(c3) >= tol:
        a = c2 / c3
        b = c1 / c3
        c = c0 / c3
        a_third = a / 3.0
        p = b - a * a_third
        q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c
        half_q = 0.5 * q
        third_p = p / 3.0
        disc = half_q * half_q + third_p * third_p * third_p
        abs_a = abs(a)
        mag_q = abs_a * abs_a * abs_a / 27.0 + abs(a * b) / 3.0 + abs(c)
        mag_p = abs(b) + a * a / 3.0
        disc_noise = 8.0 * _EPS * (
            abs(half_q) * mag_q + third_p * third_p * 3.0 * mag_p
        )
        if abs(disc) < disc_noise:
            disc = 0.0
        if disc > 0.0:
            sqrt_disc = math.sqrt(disc)
            roots[0] = (np.cbrt(-half_q + sqrt_disc)
                        + np.cbrt(-half_q - sqrt_disc) - a_third)
        elif disc < 0.0:
            m = 2.0 * math.sqrt(-third_p)
            pm = p * m
            arg = (3.0 * q) / pm
            if arg > 1.0:
                arg = 1.0
            elif arg < -1.0:
                arg = -1.0
            theta = math.acos(arg) / 3.0
            roots[0] = m * math.cos(theta) - a_third
            roots[1] = m * math.cos(theta - _PHI1) - a_third
            roots[2] = m * math.cos(theta - _PHI2) - a_third
        else:
            u = np.cbrt(-half_q)
            r1 = 2.0 * u - a_third
            r2 = -u - a_third
            if half_q == 0.0:
                roots[0] = -a_third
            else:
                roots[0] = r1
                if r1 != r2:
                    roots[1] = r2
    elif abs(c2) >= tol:
        disc = c1 * c1 - 4.0 * c2 * c0
        if disc == 0.0:
            roots[0] = -c1 / (2.0 * c2)
        else:
            sqrt_disc = math.sqrt(disc) if disc > 0.0 else np.nan
            q = -0.5 * (c1 + math.copysign(sqrt_disc, c1))
            roots[0] = q / c2
            roots[1] = c0 / q if q != 0.0 else 0.0
    elif abs(c1) >= tol:
        roots[0] = -c0 / c1


@njit(**_FAST)
def _region_of(bps, lane, k_bps, v):
    r = 0
    for j in range(k_bps):
        if bps[lane, j] < v:
            r += 1
    return r


@njit(**_FAST)
def _vsc_solve(rows, vgs, vds, bps, lo_edges, hi_edges, polys, cg, cd,
               csum, hint, out, bad):
    n = rows.shape[0]
    k_bps = bps.shape[1]
    roots = np.empty(3)
    n_bad = 0
    for i in range(n):
        lane = rows[i]
        vds_q = math.floor(vds[i] * _VDS_SCALE + 0.5) * _VDS_QUANTUM
        qt = (cg[lane] * vgs[i] + cd[lane] * vds[i]) / csum[lane]
        probe_s = hint[lane]
        probe_d = probe_s + vds_q
        solved = False
        # Four hint-refined attempts (the numpy reference stops at two
        # to stay byte-identical; extra region-refinement rounds keep
        # drift lanes out of the Python scalar fallback).
        for _attempt in range(4):
            i_s = _region_of(bps, lane, k_bps, probe_s)
            i_d = _region_of(bps, lane, k_bps, probe_d)
            d = vds_q
            qd0 = polys[lane, i_d, 0]
            qd1 = polys[lane, i_d, 1]
            qd2 = polys[lane, i_d, 2]
            qd3 = polys[lane, i_d, 3]
            s0 = qd0 + d * (qd1 + d * (qd2 + d * qd3))
            s1 = qd1 + d * (2.0 * qd2 + 3.0 * d * qd3)
            s2 = qd2 + 3.0 * d * qd3
            s3 = qd3
            e0 = qt - (polys[lane, i_s, 0] + s0)
            e1 = 1.0 - (polys[lane, i_s, 1] + s1)
            e2 = -(polys[lane, i_s, 2] + s2)
            e3 = -(polys[lane, i_s, 3] + s3)
            _real_roots_scalar(e0, e1, e2, e3, roots)
            lo = max(lo_edges[lane, i_s], lo_edges[lane, i_d] - vds_q)
            hi = min(hi_edges[lane, i_s], hi_edges[lane, i_d] - vds_q)
            # np.argmin parity: inf-masked residuals, first-min pick.
            res0 = np.inf
            pick = 0
            for j in range(3):
                r = roots[j]
                res = abs(((e3 * r + e2) * r + e1) * r + e0)
                if not (r >= lo - _EDGE_TOL and r <= hi + _EDGE_TOL
                        and np.isfinite(res)):
                    res = np.inf
                if res < res0:
                    res0 = res
                    pick = j
            best = roots[pick]
            if res0 <= _RESIDUAL_TOL:
                out[i] = best
                solved = True
                break
            if np.isfinite(best):
                probe_s = best
                probe_d = probe_s + vds_q
        if not solved:
            bad[n_bad] = i
            n_bad += 1
    return n_bad


@njit(**_FAST)
def _log1pexp(x):
    if x > 35.0:
        return x
    e = math.exp(x)
    if x < -35.0:
        return e
    return math.log1p(e)


@njit(**_FAST)
def _logistic(x):
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


@njit(**_FAST)
def _curve_region(cbps, lane, k_bps, v):
    r = 0
    for j in range(k_bps):
        if cbps[lane, j] < v:
            r += 1
    return r


@njit(**_FAST)
def _companion(didx, vsc, vgs, vds, sign, length, kt, ef, pref, cg, cd,
               csum, cbps, ccoeffs, cdcoeffs, q_prev, gmin, tran, dt,
               values, rhs_values):
    n = didx.shape[0]
    k_bps = cbps.shape[1]
    for i in range(n):
        r = didx[i]
        kt_r = kt[r]
        eta_s = (ef[r] - vsc[i]) / kt_r
        eta_d = eta_s - vds[i] / kt_r
        pref_r = pref[r]
        ids = pref_r * (_log1pexp(eta_s) - _log1pexp(eta_d))
        sig_s = _logistic(eta_s)
        sig_d = _logistic(eta_d)
        di_dvsc = (pref_r / kt_r) * (sig_d - sig_s)
        vs = vsc[i]
        vd = vsc[i] + vds[i]
        rs = _curve_region(cbps, r, k_bps, vs)
        rd = _curve_region(cbps, r, k_bps, vd)
        dq_s = (cdcoeffs[r, rs, 2] * vs + cdcoeffs[r, rs, 1]) * vs \
            + cdcoeffs[r, rs, 0]
        dq_d = (cdcoeffs[r, rd, 2] * vd + cdcoeffs[r, rd, 1]) * vd \
            + cdcoeffs[r, rd, 0]
        cg_r = cg[r]
        cd_r = cd[r]
        denominator = csum[r] - dq_s - dq_d
        dvsc_g = -cg_r / denominator
        dvsc_d = -(cd_r - dq_d) / denominator
        gm = di_dvsc * dvsc_g
        gds = (pref_r / kt_r) * sig_d + di_dvsc * dvsc_d
        s_ = sign[r]
        residual = s_ * ids - gm * s_ * vgs[i] - gds * s_ * vds[i]
        values[0, i] = gm
        values[1, i] = -(gm + gmin)
        values[2, i] = gds + gmin
        values[3, i] = gm + gds + 2.0 * gmin
        values[4, i] = -(gm + gds + gmin)
        values[5, i] = -(gds + gmin)
        values[6, i] = gmin
        values[7, i] = -gmin
        rhs_values[0, i] = -residual
        rhs_values[1, i] = residual
        if tran:
            length_r = length[r]
            q_d_mobile = ((ccoeffs[r, rd, 3] * vd + ccoeffs[r, rd, 2])
                          * vd + ccoeffs[r, rd, 1]) * vd \
                + ccoeffs[r, rd, 0]
            qg = length_r * cg_r * (vgs[i] + vsc[i])
            qd = length_r * (cd_r * (vds[i] + vsc[i]) - q_d_mobile)
            dg_gs = length_r * cg_r * (1.0 + dvsc_g)
            dg_ds = length_r * cg_r * dvsc_d
            dd_gs = length_r * dvsc_g * (cd_r - dq_d)
            dd_ds = length_r * (1.0 + dvsc_d) * (cd_r - dq_d)
            for t_idx in range(3):
                if t_idx == 0:
                    q0 = qg
                    geq_gs = dg_gs / dt
                    geq_ds = dg_ds / dt
                elif t_idx == 1:
                    q0 = qd
                    geq_gs = dd_gs / dt
                    geq_ds = dd_ds / dt
                else:
                    q0 = -(qg + qd)
                    geq_gs = -(dg_gs + dd_gs) / dt
                    geq_ds = -(dg_ds + dd_ds) / dt
                i_now = (q0 - q_prev[t_idx, r]) / dt
                row = 8 + 3 * t_idx
                values[row, i] = geq_gs
                values[row + 1, i] = geq_ds
                values[row + 2, i] = -(geq_gs + geq_ds)
                rhs_values[2 + t_idx, i] = -(
                    s_ * i_now - geq_gs * s_ * vgs[i]
                    - geq_ds * s_ * vds[i]
                )


@njit(**_FAST)
def _scatter_add_pad(out, m_idx, m_val):
    size = out.shape[0]
    for i in range(m_idx.shape[0]):
        j = m_idx[i]
        if j < size:
            out[j] += m_val[i]


@njit(**_FAST)
def _triplet_append(m_idx, m_val, dim2, out_idx, out_val, offset):
    kept = 0
    for i in range(m_idx.shape[0]):
        j = m_idx[i]
        if j < dim2:
            out_idx[offset + kept] = j
            out_val[offset + kept] = m_val[i]
            kept += 1
    return kept


@njit(**_FAST)
def _scatter_accum(data, map_idx, values):
    for i in range(map_idx.shape[0]):
        data[map_idx[i]] += values[i]


class NumbaKernelBackend:
    """Compiled kernel tier: numba ``@njit`` per-lane loops."""

    name = "numba"
    compiled = True

    def vsc_solve(self, solver, rows: np.ndarray,
                  idx: Optional[np.ndarray], vgs: np.ndarray,
                  vds: np.ndarray, hint: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        bad = np.empty(rows.size, dtype=np.int64)
        n_bad = _vsc_solve(
            rows, np.ascontiguousarray(vgs, dtype=np.float64),
            np.ascontiguousarray(vds, dtype=np.float64),
            solver.bps, solver.lo_edges, solver.hi_edges, solver.polys,
            solver.cg, solver.cd, solver.csum, hint, out, bad)
        return bad[:n_bad]

    def cnfet_companion(self, bank, didx: np.ndarray, vsc: np.ndarray,
                        vgs: np.ndarray, vds: np.ndarray, gmin: float,
                        tran: bool, dt: Optional[float]
                        ) -> Tuple[np.ndarray, np.ndarray]:
        n = didx.size
        values = np.empty((17 if tran else 8, n))
        rhs_values = np.empty((5 if tran else 2, n))
        curves = bank.curves
        _companion(
            np.ascontiguousarray(didx, dtype=np.int64),
            np.ascontiguousarray(vsc, dtype=np.float64),
            np.ascontiguousarray(vgs, dtype=np.float64),
            np.ascontiguousarray(vds, dtype=np.float64),
            bank.sign, bank.length, bank.kt, bank.ef, bank.pref,
            bank.cg, bank.cd, bank.csum,
            curves.bps, curves.coeffs, curves.dcoeffs, bank.q_prev,
            float(gmin), bool(tran),
            float(dt) if dt is not None else 0.0,
            values, rhs_values)
        return values, rhs_values

    def scatter_add_pad(self, out: np.ndarray, m_idx: np.ndarray,
                        m_val: np.ndarray) -> None:
        _scatter_add_pad(out,
                         np.ascontiguousarray(m_idx, dtype=np.int64),
                         np.ascontiguousarray(m_val, dtype=np.float64))

    def triplet_append(self, m_idx: np.ndarray, m_val: np.ndarray,
                       dim2: int, out_idx: np.ndarray,
                       out_val: np.ndarray, offset: int) -> int:
        return int(_triplet_append(
            np.ascontiguousarray(m_idx, dtype=np.int64),
            np.ascontiguousarray(m_val, dtype=np.float64),
            int(dim2), out_idx, out_val, int(offset)))

    def scatter_accum(self, base: np.ndarray, map_idx: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        data = base.copy()
        _scatter_accum(data,
                       np.ascontiguousarray(map_idx, dtype=np.int64),
                       np.ascontiguousarray(values, dtype=np.float64))
        return data
