"""Kernel tiers for the stacked hot path.

The lane-batched engine funnels through three measured hot kernels —
the :class:`~repro.pwl.batch.StackedVscSolver` region solve, the
stacked CNFET companion-bank evaluation, and the scatter-add stamping
in the assemblers.  Each has two interchangeable implementations:

``numpy``
    The historical vectorized code, moved verbatim to
    :mod:`repro.pwl.kernels.numpy_backend` — byte-identical waveforms,
    zero dependencies.

``compiled``
    Per-lane loops compiled either by numba (``numba_backend``) or by
    the system C compiler through ctypes (``cc_backend``), whichever is
    available.  Same arithmetic lane for lane; transcendentals may
    differ from numpy's SIMD ufuncs by a few ulp, bounded engine-side
    to <= 1e-12 V on waveforms (the bench parity gate).

Selection mirrors the sparse linear-solver resolve pattern
(:func:`repro.circuit.solvers.resolve_backend`): ``auto`` prefers a
compiled tier and falls back to numpy, the ``REPRO_KERNELS``
environment variable overrides the default, and the ``--kernels`` CLI
flag overrides both.  The active tier is process-global (stamp paths
sit too deep to thread a handle through): set it with
:func:`set_kernel_backend` or temporarily with :func:`using_kernels`.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Union

from repro import faults
from repro.errors import ParameterError

__all__ = [
    "KernelBackendLike",
    "active_kernel_backend",
    "compiled_backend_available",
    "have_numba",
    "resolve_kernel_backend",
    "set_kernel_backend",
    "using_kernels",
]

KernelBackendLike = Union[None, str, object]

_ENV_VAR = "REPRO_KERNELS"

_numpy_backend = None
_compiled_backend = None
_compiled_error: Optional[str] = None
_compiled_probed = False

_active = None
_active_spec: Optional[str] = None


def _get_numpy_backend():
    global _numpy_backend
    if _numpy_backend is None:
        from repro.pwl.kernels.numpy_backend import NumpyKernelBackend
        _numpy_backend = NumpyKernelBackend()
    return _numpy_backend


def have_numba() -> bool:
    """True when numba imports (the preferred compiled tier)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _get_compiled_backend(kind: str = "any"):
    """Compiled backend instance, or None (error recorded).

    ``kind``: ``"any"`` (numba, then cc), ``"numba"``, or ``"cc"``.
    """
    global _compiled_backend, _compiled_error, _compiled_probed
    if kind == "any" and _compiled_probed:
        return _compiled_backend
    errors = []
    backend = None
    if kind in ("any", "numba"):
        try:
            from repro.pwl.kernels.numba_backend import NumbaKernelBackend
            backend = NumbaKernelBackend()
        except Exception as exc:  # ImportError, or numba init failure
            errors.append(f"numba: {exc}")
    if backend is None and kind in ("any", "cc"):
        try:
            from repro.pwl.kernels.cc_backend import CcKernelBackend
            backend = CcKernelBackend()
        except Exception as exc:
            errors.append(f"cc: {exc}")
    if kind == "any":
        _compiled_probed = True
        _compiled_backend = backend
        _compiled_error = "; ".join(errors) if backend is None else None
    return backend


def compiled_backend_available() -> bool:
    """True when a compiled tier (numba or cc) can be instantiated."""
    return _get_compiled_backend() is not None


def resolve_kernel_backend(spec: KernelBackendLike = None):
    """Kernel backend for ``spec``.

    ``None`` and ``"auto"`` consult ``REPRO_KERNELS`` and then prefer a
    compiled tier, falling back to numpy; ``"numpy"`` forces the
    reference tier; ``"compiled"`` requires a compiled tier (numba or
    cc) and raises :class:`ParameterError` when neither is available;
    ``"numba"`` / ``"cc"`` pin the specific compiled flavour.  A
    backend instance passes through unchanged.
    """
    if spec is None or spec == "auto":
        env = os.environ.get(_ENV_VAR, "").strip()
        if env and env != "auto":
            return resolve_kernel_backend(env)
        if faults.fire("kernel.backend"):
            # Injected compiled-tier probe failure: auto resolution
            # degrades to the numpy reference tier, byte-identical by
            # the kernels contract (docs/robustness.md).
            return _get_numpy_backend()
        backend = _get_compiled_backend()
        return backend if backend is not None else _get_numpy_backend()
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "numpy":
            return _get_numpy_backend()
        if name in ("compiled", "numba", "cc"):
            kind = "any" if name == "compiled" else name
            backend = _get_compiled_backend(kind)
            if backend is None:
                detail = _compiled_error or "numba not installed and " \
                    "no C compiler found"
                raise ParameterError(
                    f"kernel backend '{name}' unavailable ({detail}); "
                    "use --kernels numpy or install numba")
            return backend
        raise ParameterError(
            f"unknown kernel backend '{spec}' "
            "(expected auto, numpy, compiled, numba or cc)")
    if hasattr(spec, "vsc_solve"):
        return spec
    raise ParameterError(f"unknown kernel backend spec: {spec!r}")


def active_kernel_backend():
    """The process-global kernel backend the stamp paths use."""
    global _active
    if _active is None:
        _active = resolve_kernel_backend(_active_spec)
    return _active


def set_kernel_backend(spec: KernelBackendLike = None):
    """Set (and return) the process-global kernel backend."""
    global _active, _active_spec
    _active = resolve_kernel_backend(spec)
    _active_spec = getattr(spec, "name", spec)
    return _active


@contextlib.contextmanager
def using_kernels(spec: KernelBackendLike) -> Iterator[object]:
    """Temporarily switch the process-global kernel backend."""
    global _active, _active_spec
    prev, prev_spec = _active, _active_spec
    backend = set_kernel_backend(spec)
    try:
        yield backend
    finally:
        _active, _active_spec = prev, prev_spec
