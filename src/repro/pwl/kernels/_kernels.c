/* Compiled hot kernels for the stacked CNFET evaluation path.
 *
 * Scalar-per-lane ports of the three measured hot spots of the pure
 * numpy engine (see repro/pwl/kernels/numpy_backend.py for the
 * reference implementations these mirror):
 *
 *   1. stacked_vsc_solve  — the hint-warmed shifted-cubic region solve
 *      plus residual validation of StackedVscSolver.solve;
 *   2. cnfet_companion    — the stacked companion-model bank evaluation
 *      of _StackedCNFETBank._companion (currents, analytic small-signal
 *      and charge partials, companion residuals);
 *   3. scatter_add_pad / triplet_append / scatter_accum — the dense
 *      bincount and sparse-triplet scatter-add stamping primitives;
 *   4. lu_refactor / lu_solve_factored / csc_residual_inf — frozen-
 *      pivot numeric LU refactorization.  SuperLU re-runs its full
 *      symbolic analysis (ordering, pivoting, supernode detection,
 *      allocation) on every Newton iteration even though the sparsity
 *      pattern is constant per run; these kernels replay only the
 *      numeric phase against the L/U patterns and permutations
 *      extracted from one scipy ``splu`` call, which is ~10x cheaper
 *      for MNA-sized systems.  Static pivoting can go stale as the
 *      Jacobian values drift, so every solve is residual-guarded on
 *      the Python side and falls back to a fresh factorization.
 *
 * Parity contract: every lane follows the same arithmetic sequence as
 * the numpy reference, so results agree to libm-vs-SIMD rounding (a
 * few ulp; the engine-level guarantee is <= 1e-12 V on waveforms, and
 * the residual validation inside kernel 1 bounds the root error by
 * construction).  Compile with -ffp-contract=off: FMA contraction
 * would change the rounding sequence.
 *
 * No Python/numpy headers on purpose — the library is built with a
 * bare C compiler and loaded through ctypes, so the compiled tier
 * needs nothing beyond libm at runtime.
 */

#include <math.h>
#include <stdint.h>

#define EPSILON 2.220446049250313e-16
#define DEGREE_TOL 1e-14
#define RESIDUAL_TOL 1e-12
#define EDGE_TOL 1e-9
#define VDS_QUANTUM 1e-12
#define VDS_SCALE 1e12
/* Viete phase offsets 2*pi*k/3, the exact doubles of the numpy path */
#define PHI1 2.0943951023931953
#define PHI2 4.1887902047863905

typedef int64_t idx_t;

/* ------------------------------------------------------------------ */
/* kernel 1: stacked self-consistent-voltage solve                     */
/* ------------------------------------------------------------------ */

/* number of breakpoints strictly below v (bps padded with +inf) */
static int region_of(const double *bps, idx_t k_bps, double v)
{
    int region = 0;
    for (idx_t j = 0; j < k_bps; j++)
        region += bps[j] < v;
    return region;
}

/* real roots of c0 + c1 x + c2 x^2 + c3 x^3, NaN-padded into roots[3];
 * mirrors real_roots_batch (degree classification, Cardano / Viete,
 * discriminant noise floor) lane by lane. */
static void real_roots_scalar(double c0, double c1, double c2, double c3,
                              double *roots)
{
    roots[0] = roots[1] = roots[2] = NAN;
    double scale = fmax(fmax(fabs(c0), fabs(c1)),
                        fmax(fabs(c2), fabs(c3)));
    double tol = DEGREE_TOL * scale;
    if (fabs(c3) >= tol) {
        /* includes the all-zero lane (tol == 0): the divisions below
         * produce NaN roots exactly as the vectorized path does. */
        double a = c2 / c3;
        double b = c1 / c3;
        double c = c0 / c3;
        double a_third = a / 3.0;
        double p = b - a * a_third;
        double q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c;
        double half_q = 0.5 * q;
        double third_p = p / 3.0;
        double disc = half_q * half_q + third_p * third_p * third_p;
        double abs_a = fabs(a);
        double mag_q = abs_a * abs_a * abs_a / 27.0
            + fabs(a * b) / 3.0 + fabs(c);
        double mag_p = fabs(b) + a * a / 3.0;
        double disc_noise = 8.0 * EPSILON * (
            fabs(half_q) * mag_q + third_p * third_p * 3.0 * mag_p);
        if (fabs(disc) < disc_noise)
            disc = 0.0;
        if (disc > 0.0) {
            double sqrt_disc = sqrt(disc);
            roots[0] = cbrt(-half_q + sqrt_disc)
                + cbrt(-half_q - sqrt_disc) - a_third;
        } else if (disc < 0.0) {
            /* disc < 0 forces third_p < 0 */
            double m = 2.0 * sqrt(-third_p);
            double pm = p * m;
            double arg = (3.0 * q) / pm;
            if (arg > 1.0) arg = 1.0;
            if (arg < -1.0) arg = -1.0;
            double theta = acos(arg) / 3.0;
            roots[0] = m * cos(theta) - a_third;
            roots[1] = m * cos(theta - PHI1) - a_third;
            roots[2] = m * cos(theta - PHI2) - a_third;
        } else if (disc == 0.0) {
            double u = cbrt(-half_q);
            double r1 = 2.0 * u - a_third;
            double r2 = -u - a_third;
            roots[0] = (half_q == 0.0) ? -a_third : r1;
            if (!(half_q == 0.0 || r1 == r2))
                roots[1] = r2;
        }
        /* disc NaN (all-zero lane): roots stay NaN */
    } else if (fabs(c2) >= tol) {
        double disc = c1 * c1 - 4.0 * c2 * c0;
        double sqrt_disc = sqrt(disc);   /* NaN when disc < 0 */
        double q = -0.5 * (c1 + copysign(sqrt_disc, c1));
        double r0 = q / c2;
        double r1 = (q != 0.0) ? c0 / q : 0.0;
        if (disc == 0.0) {
            r0 = -c1 / (2.0 * c2);
            r1 = NAN;
        }
        roots[0] = r0;
        roots[1] = r1;
    } else if (fabs(c1) >= tol) {
        roots[0] = -c0 / c1;
    }
}

/* Stacked VSC solve: hint-warmed attempts per lane (each re-deriving
 * the region pair from the previous best candidate); lanes that still
 * fail residual validation land in `bad` (selection positions) for
 * the caller's scalar fallback.  The numpy reference stops after two
 * attempts to stay byte-identical with the historical engine; here
 * two more region-refinement rounds cost nanoseconds and resolve
 * almost every drift lane in-kernel, avoiding the ~60 us Python
 * scalar fallback each (the charge-balance residual has a unique
 * in-range root, so a validated root is *the* root either way).
 * Returns the number of bad lanes. */
idx_t stacked_vsc_solve(
    idx_t n, const idx_t *rows,
    const double *vgs, const double *vds,
    const double *bps, const double *lo_edges, const double *hi_edges,
    const double *polys, const double *cg, const double *cd,
    const double *csum, idx_t k_bps,
    const double *hint, double *out, idx_t *bad)
{
    idx_t n_bad = 0;
    idx_t stride_e = k_bps + 1;       /* edges per lane */
    for (idx_t k = 0; k < n; k++) {
        idx_t r = rows[k];
        const double *bps_r = bps + r * k_bps;
        const double *lo_r = lo_edges + r * stride_e;
        const double *hi_r = hi_edges + r * stride_e;
        const double *polys_r = polys + r * stride_e * 4;
        double vds_k = vds[k];
        double vds_q = floor(vds_k * VDS_SCALE + 0.5) * VDS_QUANTUM;
        double qt = (cg[r] * vgs[k] + cd[r] * vds_k) / csum[r];
        double probe_s = hint[r];
        int done = 0;
        for (int attempt = 0; attempt < 4 && !done; attempt++) {
            double probe_d = probe_s + vds_q;
            int i_s = region_of(bps_r, k_bps, probe_s);
            int i_d = region_of(bps_r, k_bps, probe_d);
            const double *qs = polys_r + (idx_t)i_s * 4;
            const double *qd = polys_r + (idx_t)i_d * 4;
            /* Taylor shift of the drain polynomial by quantized VDS */
            double d = vds_q;
            double s0 = qd[0] + d * (qd[1] + d * (qd[2] + d * qd[3]));
            double s1 = qd[1] + d * (2.0 * qd[2] + 3.0 * d * qd[3]);
            double s2 = qd[2] + 3.0 * d * qd[3];
            double s3 = qd[3];
            double e0 = qt - (qs[0] + s0);
            double e1 = 1.0 - (qs[1] + s1);
            double e2 = -(qs[2] + s2);
            double e3 = -(qs[3] + s3);
            double roots[3];
            real_roots_scalar(e0, e1, e2, e3, roots);
            double lo = fmax(lo_r[i_s], lo_r[i_d] - vds_q);
            double hi = fmin(hi_r[i_s], hi_r[i_d] - vds_q);
            /* residual validation; argmin keeps the first minimum the
             * way np.argmin does */
            double res[3];
            for (int j = 0; j < 3; j++) {
                double root = roots[j];
                double rv = fabs(((e3 * root + e2) * root + e1) * root
                                 + e0);
                int inside = root >= lo - EDGE_TOL
                    && root <= hi + EDGE_TOL;
                res[j] = (inside && isfinite(rv)) ? rv : INFINITY;
            }
            int pick = 0;
            if (res[1] < res[pick]) pick = 1;
            if (res[2] < res[pick]) pick = 2;
            double best = roots[pick];
            if (res[pick] <= RESIDUAL_TOL) {
                out[k] = best;
                done = 1;
            } else if (isfinite(best)) {
                /* refinement: re-derive the region pair from the best
                 * candidate root */
                probe_s = best;
            }
        }
        if (!done)
            bad[n_bad++] = k;
    }
    return n_bad;
}

/* ------------------------------------------------------------------ */
/* kernel 2: stacked companion-model bank evaluation                   */
/* ------------------------------------------------------------------ */

static double log1pexp_scalar(double x)
{
    if (x > 35.0)
        return x;
    if (x < -35.0)
        return exp(x);
    return log1p(exp(x));
}

static double logistic_scalar(double x)
{
    if (x >= 0.0)
        return 1.0 / (1.0 + exp(-x));
    double e = exp(x);
    return e / (1.0 + e);
}

/* piecewise-cubic curve value: region lookup + Horner */
static double curve_value(const double *bps_r, const double *coeffs_r,
                          idx_t k_bps, double v)
{
    int region = region_of(bps_r, k_bps, v);
    const double *c = coeffs_r + (idx_t)region * 4;
    return ((c[3] * v + c[2]) * v + c[1]) * v + c[0];
}

static double curve_derivative(const double *bps_r,
                               const double *dcoeffs_r,
                               idx_t k_bps, double v)
{
    int region = region_of(bps_r, k_bps, v);
    const double *c = dcoeffs_r + (idx_t)region * 3;
    return (c[2] * v + c[1]) * v + c[0];
}

/* Companion stamp values around given biases; vsc comes from kernel 1
 * (or its scalar fallback).  Fills values (17|8, n) and rhs (5|2, n)
 * row-major, matching _StackedCNFETBank._companion row for row. */
void cnfet_companion(
    idx_t n, const idx_t *didx,
    const double *vsc, const double *vgs, const double *vds,
    const double *sign, const double *length, const double *kt,
    const double *ef, const double *pref, const double *cg,
    const double *cd, const double *csum,
    const double *cbps, const double *ccoeffs, const double *cdcoeffs,
    idx_t n_lanes, idx_t k_bps,
    const double *q_prev,
    double gmin, int tran, double dt,
    double *values, double *rhs)
{
    idx_t stride_c = (k_bps + 1) * 4;
    idx_t stride_d = (k_bps + 1) * 3;
    for (idx_t k = 0; k < n; k++) {
        idx_t r = didx[k];
        double s_ = sign[r];
        double v = vsc[k];
        double vg = vgs[k];
        double vd = vds[k];
        double kt_r = kt[r];
        double eta_s = (ef[r] - v) / kt_r;
        double eta_d = eta_s - vd / kt_r;
        double pref_r = pref[r];
        double ids = pref_r * (log1pexp_scalar(eta_s)
                               - log1pexp_scalar(eta_d));
        double sig_s = logistic_scalar(eta_s);
        double sig_d = logistic_scalar(eta_d);
        double di_dvsc = (pref_r / kt_r) * (sig_d - sig_s);
        const double *cbps_r = cbps + r * k_bps;
        double dq_s = curve_derivative(cbps_r, cdcoeffs + r * stride_d,
                                       k_bps, v);
        double dq_d = curve_derivative(cbps_r, cdcoeffs + r * stride_d,
                                       k_bps, v + vd);
        double cg_r = cg[r], cd_r = cd[r];
        double denominator = csum[r] - dq_s - dq_d;
        double dvsc_g = -cg_r / denominator;
        double dvsc_d = -(cd_r - dq_d) / denominator;
        double gm = di_dvsc * dvsc_g;
        double gds = (pref_r / kt_r) * sig_d + di_dvsc * dvsc_d;
        double residual = s_ * ids - gm * s_ * vg - gds * s_ * vd;
        values[0 * n + k] = gm;
        values[1 * n + k] = -(gm + gmin);
        values[2 * n + k] = gds + gmin;
        values[3 * n + k] = gm + gds + 2.0 * gmin;
        values[4 * n + k] = -(gm + gds + gmin);
        values[5 * n + k] = -(gds + gmin);
        values[6 * n + k] = gmin;
        values[7 * n + k] = -gmin;
        rhs[0 * n + k] = -residual;
        rhs[1 * n + k] = residual;
        if (tran) {
            double len = length[r];
            double q_d_mobile = curve_value(cbps_r,
                                            ccoeffs + r * stride_c,
                                            k_bps, v + vd);
            double qg = len * cg_r * (vg + v);
            double qd = len * (cd_r * (vd + v) - q_d_mobile);
            double q0[3];
            q0[0] = qg;
            q0[1] = qd;
            q0[2] = -(qg + qd);
            double dg_gs = len * cg_r * (1.0 + dvsc_g);
            double dg_ds = len * cg_r * dvsc_d;
            double dd_gs = len * dvsc_g * (cd_r - dq_d);
            double dd_ds = len * (1.0 + dvsc_d) * (cd_r - dq_d);
            double dq_dvgs[3], dq_dvds[3];
            dq_dvgs[0] = dg_gs;
            dq_dvgs[1] = dd_gs;
            dq_dvgs[2] = -(dg_gs + dd_gs);
            dq_dvds[0] = dg_ds;
            dq_dvds[1] = dd_ds;
            dq_dvds[2] = -(dg_ds + dd_ds);
            for (int t = 0; t < 3; t++) {
                double geq_gs = dq_dvgs[t] / dt;
                double geq_ds = dq_dvds[t] / dt;
                double i_now = (q0[t] - q_prev[t * n_lanes + r]) / dt;
                idx_t row = 8 + 3 * (idx_t)t;
                values[row * n + k] = geq_gs;
                values[(row + 1) * n + k] = geq_ds;
                values[(row + 2) * n + k] = -(geq_gs + geq_ds);
                rhs[(2 + (idx_t)t) * n + k] = -(
                    s_ * i_now - geq_gs * s_ * vg - geq_ds * s_ * vd);
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* kernel 3: scatter-add stamping primitives                           */
/* ------------------------------------------------------------------ */

/* out[idx[i]] += val[i], entries with idx >= out_size discarded (the
 * ground pad of the flat stamp index tables). */
void scatter_add_pad(double *out, idx_t out_size,
                     const idx_t *idx, const double *val, idx_t n)
{
    for (idx_t i = 0; i < n; i++) {
        idx_t j = idx[i];
        if (j < out_size)
            out[j] += val[i];
    }
}

/* Copy triplets with idx < dim2 (pad entries dropped); returns the
 * number kept.  Bit-identical to the boolean-mask numpy path. */
idx_t triplet_append(const idx_t *idx, const double *val, idx_t n,
                     idx_t dim2, idx_t *out_idx, double *out_val)
{
    idx_t kept = 0;
    for (idx_t i = 0; i < n; i++) {
        idx_t j = idx[i];
        if (j < dim2) {
            out_idx[kept] = j;
            out_val[kept] = val[i];
            kept++;
        }
    }
    return kept;
}

/* data[map[i]] += val[i] — the dynamic-value scatter of the sparse
 * assembler (data preloaded with the static part by the caller). */
void scatter_accum(double *data, const idx_t *map, const double *val,
                   idx_t n)
{
    for (idx_t i = 0; i < n; i++)
        data[map[i]] += val[i];
}

/* ------------------------------------------------------------------ */
/* kernel 4: frozen-pivot numeric LU refactorization                   */
/* ------------------------------------------------------------------ */

/* Left-looking numeric refactorization of a CSC matrix against frozen
 * L/U patterns and permutations (from one SuperLU factorization of
 * the same pattern, Equil off):
 *
 *     Pr A Pc = L U,   row i of A -> row pr[i],  LU column j draws
 *     from A column pcinv[j].
 *
 * Patterns must be column-sorted with the L diagonal (unit) first and
 * the U diagonal last in each column; the A pattern is structurally
 * contained in L+U by construction.  `work` is an n-sized scratch the
 * caller keeps zeroed between calls (every touched entry is cleared
 * on exit, including the early-return path).
 *
 * Returns 0 on success, j+1 when column j hits a zero / non-finite
 * pivot — the caller then refreshes the symbolic factorization. */
idx_t lu_refactor(
    idx_t n,
    const idx_t *ap, const idx_t *ai, const double *ax,
    const idx_t *pr, const idx_t *pcinv,
    const idx_t *lp, const idx_t *li, double *lx,
    const idx_t *up, const idx_t *ui, double *ux,
    double *work)
{
    for (idx_t j = 0; j < n; j++) {
        idx_t col = pcinv[j];
        for (idx_t p = ap[col]; p < ap[col + 1]; p++)
            work[pr[ai[p]]] = ax[p];
        /* eliminate with the already-factored columns named by the
         * U pattern (ascending, diagonal excluded) */
        for (idx_t p = up[j]; p < up[j + 1] - 1; p++) {
            idx_t k = ui[p];
            double ukj = work[k];
            ux[p] = ukj;
            if (ukj != 0.0)
                for (idx_t q = lp[k] + 1; q < lp[k + 1]; q++)
                    work[li[q]] -= ukj * lx[q];
        }
        double diag = work[j];
        ux[up[j + 1] - 1] = diag;
        int bad = !isfinite(diag) || diag == 0.0;
        lx[lp[j]] = 1.0;
        for (idx_t q = lp[j] + 1; q < lp[j + 1]; q++)
            lx[q] = bad ? 0.0 : work[li[q]] / diag;
        for (idx_t p = ap[col]; p < ap[col + 1]; p++)
            work[pr[ai[p]]] = 0.0;
        for (idx_t p = up[j]; p < up[j + 1]; p++)
            work[ui[p]] = 0.0;
        for (idx_t q = lp[j]; q < lp[j + 1]; q++)
            work[li[q]] = 0.0;
        if (bad)
            return j + 1;
    }
    return 0;
}

/* Solve A x = b from a lu_refactor factorization:
 * permute (prinv), forward L (unit diagonal), backward U, permute
 * back (pc).  `work` is n scratch; out may not alias b. */
void lu_solve_factored(
    idx_t n,
    const idx_t *lp, const idx_t *li, const double *lx,
    const idx_t *up, const idx_t *ui, const double *ux,
    const idx_t *prinv, const idx_t *pc,
    const double *b, double *out, double *work)
{
    for (idx_t i = 0; i < n; i++)
        work[i] = b[prinv[i]];
    for (idx_t j = 0; j < n; j++) {
        double yj = work[j];
        if (yj != 0.0)
            for (idx_t q = lp[j] + 1; q < lp[j + 1]; q++)
                work[li[q]] -= yj * lx[q];
    }
    for (idx_t j = n - 1; j >= 0; j--) {
        double zj = work[j] / ux[up[j + 1] - 1];
        work[j] = zj;
        if (zj != 0.0)
            for (idx_t p = up[j]; p < up[j + 1] - 1; p++)
                work[ui[p]] -= zj * ux[p];
    }
    for (idx_t i = 0; i < n; i++)
        out[i] = work[pc[i]];
}

/* max_i |A x - b| for a CSC matrix — the per-solve staleness guard of
 * the refactorization lane (cheap: one pass over the nonzeros). */
double csc_residual_inf(
    idx_t n,
    const idx_t *ap, const idx_t *ai, const double *ax,
    const double *x, const double *b, double *work)
{
    for (idx_t i = 0; i < n; i++)
        work[i] = -b[i];
    for (idx_t col = 0; col < n; col++) {
        double xc = x[col];
        if (xc != 0.0)
            for (idx_t p = ap[col]; p < ap[col + 1]; p++)
                work[ai[p]] += ax[p] * xc;
    }
    double worst = 0.0;
    for (idx_t i = 0; i < n; i++) {
        double r = fabs(work[i]);
        if (r > worst)
            worst = r;
        work[i] = 0.0;
    }
    return worst;
}
