"""Fitting the piecewise non-linear charge approximation (paper §IV).

The paper's construction, generalised:

* the VSC axis is split into regions by breakpoints expressed *relative
  to* ``EF/q`` (e.g. Model 1: ``EF/q - 0.08`` and ``EF/q + 0.08``);
* the rightmost region is identically zero;
* each region carries a polynomial of prescribed order (<= 3) subject to
  **C1 continuity** at every breakpoint;
* free coefficients minimise the RMS deviation from the theoretical
  curve ("a purely numerical, rather than symbolic, approach");
* optionally, the breakpoints themselves are optimised for RMS
  ("the boundaries are calculated to minimise the RMS deviation").

C1 + the zero right region leave exactly ``order - 1`` free coefficients
per region (``t^2 .. t^order`` in the local coordinate ``t = x - b_right``;
``t^0`` and ``t^1`` are fixed by continuity).  The fitted curve is linear
in those coefficients, so the inner problem is ordinary least squares on
a sampled theoretical curve; the outer boundary optimisation is a small
Nelder-Mead search re-solving the inner problem per step.

Basis construction: the element for (region ``l``, power ``j``) is

* 0 to the right of region ``l`` (it vanishes with two zero derivatives
  at its right boundary, preserving C1),
* ``(x - b_l)^j`` inside region ``l``,
* the straight line continuing value and slope across the left boundary
  everywhere to the left (further-left regions own their own curvature
  parameters, so a linear continuation spans the same function space).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.errors import FittingError, ParameterError
from repro.physics.charge import ChargeModel
from repro.pwl.polynomials import shift_polynomial
from repro.pwl.regions import PiecewiseCharge


@dataclass(frozen=True)
class FitSpec:
    """Region layout of a piecewise charge approximation.

    Attributes
    ----------
    orders:
        Polynomial order per region, left to right.  The last entry must
        be 0 (the zero region); the first should be 1 so the model
        extrapolates linearly under gate overdrive.
    boundaries_rel:
        Breakpoints relative to ``EF/q`` [V], ascending, one fewer than
        ``orders``... exactly ``len(orders) - 1`` entries.
    window_rel:
        Fitting window relative to ``EF/q`` [V]; must contain all
        boundaries.
    samples:
        Number of sample points of the theoretical curve.
    name:
        Display name ("model1", "model2", ...).
    weighting:
        ``"gaussian"`` (default) emphasises the region around ``EF/q``
        with ``w(x) = 0.1 + exp(-((x - EF/q)/0.1 V)^2)`` — the drain
        current is exponentially sensitive to VSC errors there, so
        charge-fit effort is spent where it buys IDS accuracy;
        ``"uniform"`` reproduces a plain unweighted fit (used by the
        weighting ablation benchmark).
    """

    orders: Tuple[int, ...]
    boundaries_rel: Tuple[float, ...]
    window_rel: Tuple[float, float] = (-0.6, 0.32)
    samples: int = 600
    name: str = "custom"
    weighting: str = "gaussian"

    def __post_init__(self) -> None:
        if len(self.orders) < 2:
            raise ParameterError("need at least two regions")
        if self.orders[-1] != 0:
            raise ParameterError(
                f"rightmost region must be the zero region: {self.orders}"
            )
        if any(o < 1 or o > 3 for o in self.orders[:-1]):
            raise ParameterError(
                f"interior region orders must be 1..3: {self.orders}"
            )
        if len(self.boundaries_rel) != len(self.orders) - 1:
            raise ParameterError(
                f"{len(self.orders)} regions need {len(self.orders)-1} "
                f"boundaries, got {len(self.boundaries_rel)}"
            )
        bs = list(self.boundaries_rel)
        if sorted(bs) != bs or len(set(bs)) != len(bs):
            raise ParameterError(f"boundaries must strictly ascend: {bs}")
        lo, hi = self.window_rel
        if not (lo < bs[0] and bs[-1] < hi):
            raise ParameterError(
                f"window {self.window_rel} must contain boundaries {bs}"
            )
        if self.samples < 50:
            raise ParameterError(f"need >= 50 samples: {self.samples}")
        if self.weighting not in ("gaussian", "uniform"):
            raise ParameterError(
                f"weighting must be 'gaussian' or 'uniform': "
                f"{self.weighting!r}"
            )

    @property
    def free_parameters(self) -> int:
        """Number of free polynomial coefficients (paper: 1 for Model 1,
        3 for Model 2)."""
        return sum(max(0, o - 1) for o in self.orders[:-1])


@dataclass(frozen=True)
class FittedCharge:
    """Result of a charge-curve fit.

    ``curve`` is the fitted :class:`PiecewiseCharge` in absolute VSC
    coordinates; the diagnostics record how well it tracks theory.
    """

    curve: PiecewiseCharge
    spec: FitSpec
    fermi_level_ev: float
    temperature_k: float
    rms_error: float            #: absolute RMS deviation [C/m]
    rms_error_relative: float   #: RMS / peak theoretical charge
    boundaries_abs: Tuple[float, ...]
    free_coefficients: Tuple[float, ...] = field(default=())


def _basis_matrix(x: np.ndarray, boundaries: Sequence[float],
                  orders: Sequence[int]) -> Tuple[np.ndarray, list]:
    """Design matrix of the C1 basis described in the module docstring.

    Returns ``(A, index)`` where ``index[k] = (region, power)`` labels
    column ``k``.
    """
    columns = []
    index = []
    n_regions = len(orders)
    for region in range(n_regions - 1):  # zero region has no parameters
        order = orders[region]
        b_right = boundaries[region]
        b_left = boundaries[region - 1] if region > 0 else None
        for power in range(2, order + 1):
            col = np.zeros_like(x)
            inside = x <= b_right
            if b_left is not None:
                inside &= x > b_left
            t = x[inside] - b_right
            col[inside] = t ** power
            if b_left is not None:
                left = x <= b_left
                dt = b_left - b_right
                value = dt ** power
                slope = power * dt ** (power - 1)
                col[left] = value + slope * (x[left] - b_left)
            columns.append(col)
            index.append((region, power))
    if not columns:
        raise FittingError(
            "fit spec has no free coefficients (all regions linear); "
            "at least one region of order >= 2 is required"
        )
    return np.column_stack(columns), index


def _build_curve(boundaries: Sequence[float], orders: Sequence[int],
                 coeffs: Sequence[float],
                 index: Sequence[Tuple[int, int]],
                 tail_value: float = 0.0) -> PiecewiseCharge:
    """Assemble the absolute-coordinate piecewise polynomial from the
    fitted free coefficients, region by region, right to left.

    ``tail_value`` is the constant of the rightmost ("zero") region: the
    paper uses 0, which is exact for EF well below the band edge; the
    theoretical curve actually saturates at ``-q N0 / 2`` (see
    ``fit_piecewise_charge``), and a C1 constant tail simply adds that
    constant to every region.
    """
    n_regions = len(orders)
    region_polys: list = [None] * n_regions
    region_polys[n_regions - 1] = (tail_value,)
    # Local polynomials first (local coordinate t = x - b_right).
    for region in range(n_regions - 2, -1, -1):
        b_right = boundaries[region]
        local = [tail_value, 0.0, 0.0, 0.0]
        for (reg, power), a in zip(index, coeffs):
            if reg == region:
                local[power] += a
            elif reg > region:
                # Linear continuation of a right-region basis element:
                # chain through every intermediate boundary.  Because the
                # continuation is linear from the first crossing on, its
                # restriction to this region is the same line.
                b_owner = boundaries[reg]
                b_cross = boundaries[reg - 1]
                dt = b_cross - b_owner
                value = a * dt ** power
                slope = a * power * dt ** (power - 1)
                # Express the line value+slope*(x-b_cross) in local t:
                # x = t + b_right  ->  x - b_cross = t + (b_right - b_cross)
                offset = b_right - b_cross
                local[0] += value + slope * offset
                local[1] += slope
        region_polys[region] = tuple(local)
    # Convert local coordinates to absolute: p_local(x - b_right).
    abs_polys = []
    for region in range(n_regions):
        if region == n_regions - 1:
            abs_polys.append((tail_value,))
            continue
        coeffs_local = region_polys[region]
        abs_polys.append(
            tuple(shift_polynomial(coeffs_local, -boundaries[region]))
        )
    # Trim to the declared order (drop trailing zeros beyond it).
    trimmed = []
    for region, poly in enumerate(abs_polys):
        order = orders[region]
        keep = max(1, order + 1)
        trimmed.append(tuple(poly[:keep]) if region < n_regions - 1
                       else (tail_value,))
    return PiecewiseCharge(tuple(boundaries), tuple(trimmed))


#: Gaussian weighting shape parameters (volts): emphasis width around
#: EF/q and the floor keeping the far linear region constrained.
_WEIGHT_SIGMA = 0.1
_WEIGHT_FLOOR = 0.1


def _fit_at_boundaries(
    x: np.ndarray, y: np.ndarray, boundaries: Sequence[float],
    orders: Sequence[int], tail_value: float = 0.0,
    sqrt_weights: Optional[np.ndarray] = None,
) -> Tuple[PiecewiseCharge, float, Tuple[float, ...]]:
    """Inner (weighted) least-squares problem at fixed boundaries."""
    a_matrix, index = _basis_matrix(x, boundaries, orders)
    target = y - tail_value
    if sqrt_weights is not None:
        a_matrix = a_matrix * sqrt_weights[:, None]
        target = target * sqrt_weights
    solution, *_ = np.linalg.lstsq(a_matrix, target, rcond=None)
    residual = a_matrix @ solution - target
    rms = float(np.sqrt(np.mean(residual**2)))
    curve = _build_curve(boundaries, orders, solution, index, tail_value)
    return curve, rms, tuple(float(c) for c in solution)


def fit_piecewise_charge(
    charge: ChargeModel,
    spec: FitSpec,
    optimize_boundaries: bool = False,
    theoretical: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tail: str = "saturation",
) -> FittedCharge:
    """Fit a piecewise charge approximation to the theoretical curve.

    Parameters
    ----------
    charge:
        Theoretical charge model providing ``qs(vsc)`` (and the Fermi
        level the breakpoints are anchored to).
    spec:
        Region layout; see :class:`FitSpec`.  The paper's layouts are in
        :mod:`repro.pwl.model1` / :mod:`repro.pwl.model2`.
    optimize_boundaries:
        When True, refine ``spec.boundaries_rel`` by Nelder-Mead on the
        RMS objective (the paper's numerically-optimised boundaries);
        when False, use the spec's boundaries as given.
    theoretical:
        Override of the theoretical curve (used by tests to fit known
        synthetic shapes).  Defaults to ``charge.qs``.
    tail:
        Value of the rightmost region.  ``"zero"`` is the paper's
        published structure (exact only for EF well below the band
        edge); ``"saturation"`` (default) uses the theoretical asymptote
        ``QS(+inf) = -q N0 / 2``, which the paper's own eq. (1) implies
        and which coincides with zero to ~1e-16 C/m at EF = -0.32 eV but
        is essential at EF = 0 (see DESIGN.md §6).

    Returns
    -------
    FittedCharge

    Raises
    ------
    FittingError
        If the least-squares problem is degenerate or optimisation moves
        boundaries out of the window.
    """
    if tail not in ("zero", "saturation"):
        raise ParameterError(f"tail must be 'zero' or 'saturation': {tail!r}")
    ef = charge.fermi_level_ev
    lo = ef + spec.window_rel[0]
    hi = ef + spec.window_rel[1]
    x = np.linspace(lo, hi, spec.samples)
    curve_fn = theoretical if theoretical is not None else charge.qs
    y = np.asarray(curve_fn(x), dtype=float)
    if not np.all(np.isfinite(y)):
        raise FittingError("theoretical charge curve contains non-finite "
                           "values inside the fit window")
    peak = float(np.max(np.abs(y)))
    if peak == 0.0:
        raise FittingError("theoretical charge curve is identically zero")
    if tail == "saturation" and theoretical is None:
        # QS(VSC -> +inf) = q (0 - N0/2): the occupied +k states empty
        # out and only the equilibrium offset remains.
        from repro.constants import ELEMENTARY_CHARGE

        tail_value = -0.5 * ELEMENTARY_CHARGE * charge.n_equilibrium()
    else:
        tail_value = 0.0
    if spec.weighting == "gaussian":
        weights = _WEIGHT_FLOOR + np.exp(-((x - ef) / _WEIGHT_SIGMA) ** 2)
        sqrt_weights = np.sqrt(weights)
    else:
        sqrt_weights = None

    def solve(boundaries_rel: Sequence[float]):
        boundaries = [ef + b for b in boundaries_rel]
        return _fit_at_boundaries(x, y, boundaries, spec.orders, tail_value,
                                  sqrt_weights)

    boundaries_rel = list(spec.boundaries_rel)
    if optimize_boundaries:
        window = spec.window_rel
        margin = 0.01

        def objective(b: np.ndarray) -> float:
            bs = sorted(b.tolist())
            if bs[0] <= window[0] + margin or bs[-1] >= window[1] - margin:
                return 1e3 * peak
            if min(np.diff(bs)) < 0.02:
                return 1e3 * peak
            try:
                _, rms, _ = solve(bs)
            except (FittingError, np.linalg.LinAlgError):
                return 1e3 * peak
            return rms

        result = minimize(
            objective, np.asarray(boundaries_rel), method="Nelder-Mead",
            options={"xatol": 1e-4, "fatol": 1e-3 * peak, "maxiter": 400},
        )
        candidate = sorted(result.x.tolist())
        if objective(np.asarray(candidate)) < objective(
                np.asarray(boundaries_rel)):
            boundaries_rel = candidate

    curve, rms, free = solve(boundaries_rel)
    return FittedCharge(
        curve=curve,
        spec=spec,
        fermi_level_ev=ef,
        temperature_k=charge.temperature_k,
        rms_error=rms,
        rms_error_relative=rms / peak,
        boundaries_abs=tuple(ef + b for b in boundaries_rel),
        free_coefficients=free,
    )
