"""Model 1 — the paper's three-piece approximation (Fig. 2).

Regions (relative to ``EF/q``):

1. linear for ``VSC - EF/q <= -0.08 V``,
2. quadratic for ``-0.08 V < VSC - EF/q < +0.08 V``,
3. zero for ``VSC - EF/q >= +0.08 V``.

With C1 continuity this leaves a single free coefficient (the quadratic
curvature), making Model 1 the fastest and least accurate of the two —
the paper reports ~3400x speed-up and < 5% average RMS error.
"""

from __future__ import annotations

from repro.physics.charge import ChargeModel
from repro.pwl.fitting import FitSpec, FittedCharge, fit_piecewise_charge

#: Paper's Model 1 region boundaries relative to EF/q [V].
MODEL1_BOUNDARIES = (-0.08, 0.08)

#: Fit window relative to EF/q — matches the VSC span of the paper's
#: Fig. 2 (absolute -0.5..0 V at EF = -0.32 eV).
MODEL1_WINDOW = (-0.18, 0.32)

MODEL1_SPEC = FitSpec(
    orders=(1, 2, 0),
    boundaries_rel=MODEL1_BOUNDARIES,
    window_rel=MODEL1_WINDOW,
    name="model1",
)


def build_model1(charge: ChargeModel,
                 optimize_boundaries: bool = False) -> FittedCharge:
    """Fit Model 1 to a theoretical charge model.

    ``optimize_boundaries=True`` refines the two breakpoints numerically
    (the paper's boundary optimisation); the defaults are the paper's
    published values.
    """
    return fit_piecewise_charge(
        charge, MODEL1_SPEC, optimize_boundaries=optimize_boundaries
    )
