"""Standard-cell style gate characterization (delay / slew / energy).

The paper's future work names "practical logic circuit structures based
on CNT devices"; the workload that makes a compact model *useful* for
them is library characterization — timing a cell over an input-slew x
output-load grid the way a Liberty flow does.  This subsystem does that
on top of the adaptive transient engine:

``gates``
    :class:`GateSpec` registry: inverter, NAND2/NAND3, NOR2 and a
    transmission-gate buffer, each with its driven test-circuit
    builder and side-input conventions.
``engine``
    :func:`characterize_gate`: one adaptive transient per grid point
    (both output arcs from a single input pulse), measuring 50%-50%
    delay, 20%-80% output slew and supply switching energy.
``table``
    :class:`CharTable` lookup tables with JSON / CSV / Liberty-style
    export and ASCII rendering.
``variability``
    :class:`GateDelayEvaluator`: plugs gate timing into the
    Monte-Carlo campaign engine (``python -m repro mc --workload
    gate``).

See ``docs/characterization.md`` for the measurement definitions and a
worked example, and ``python -m repro characterize --help`` for the
CLI.
"""

from repro.characterize.engine import (  # noqa: F401
    DEFAULT_LOADS,
    DEFAULT_SLEWS,
    characterize_gate,
)
from repro.characterize.gates import GATES, GateSpec, gate_spec  # noqa: F401
from repro.characterize.table import ArcTable, CharTable  # noqa: F401
from repro.characterize.variability import GateDelayEvaluator  # noqa: F401
