"""Characterization result container and exporters.

A :class:`CharTable` holds delay / output-slew / switching-energy
lookup tables over an input-slew x output-load grid — the same shape a
Liberty ``timing()`` / ``internal_power()`` group uses — and exports
them as JSON (machine-readable, the CLI ``--json`` payload), CSV (one
row per grid point and arc) or a Liberty-flavoured text block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.report import ascii_table

__all__ = ["ArcTable", "CharTable"]

#: Metric keys stored per arc.
ARC_METRICS = ("delay", "out_slew", "energy")


@dataclass
class ArcTable:
    """One timing arc: 2-D grids indexed ``[i_slew][j_load]``.

    Attributes
    ----------
    delay : list of list of float
        50%-input to 50%-output propagation delay [s].
    out_slew : list of list of float
        Output 20%-80% transition time [s].
    energy : list of list of float
        Energy drawn from the supply during the transition [J]
        (leakage-baseline subtracted).
    """

    delay: List[List[float]] = field(default_factory=list)
    out_slew: List[List[float]] = field(default_factory=list)
    energy: List[List[float]] = field(default_factory=list)

    def to_json_dict(self) -> Dict:
        """JSON-ready per-arc grids."""
        return {"delay": self.delay, "out_slew": self.out_slew,
                "energy": self.energy}


@dataclass
class CharTable:
    """Delay / slew / energy characterization of one gate.

    Attributes
    ----------
    gate : str
        Gate name (a :data:`repro.characterize.GATES` key).
    vdd : float
        Supply voltage [V].
    slews : tuple of float
        Input transition times (0-100% ramp) of the grid [s].
    loads : tuple of float
        Output load capacitances of the grid [F].
    arcs : dict
        ``{"rise": ArcTable, "fall": ArcTable}`` keyed by the *output*
        transition direction.
    meta : dict
        Engine settings (model, tolerances, thresholds) for
        reproducibility.
    """

    gate: str
    vdd: float
    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    arcs: Dict[str, ArcTable]
    meta: Dict = field(default_factory=dict)

    # -- exports -------------------------------------------------------

    def to_json_dict(self) -> Dict:
        """JSON-ready payload (see ``docs/characterization.md``)."""
        return {
            "gate": self.gate,
            "vdd": self.vdd,
            "slews_s": list(self.slews),
            "loads_f": list(self.loads),
            "arcs": {name: arc.to_json_dict()
                     for name, arc in self.arcs.items()},
            "meta": dict(self.meta),
        }

    def to_csv(self) -> str:
        """One CSV row per ``(arc, slew, load)`` grid point."""
        lines = ["arc,slew_s,load_f,delay_s,out_slew_s,energy_j"]
        for arc_name in sorted(self.arcs):
            arc = self.arcs[arc_name]
            for i, slew in enumerate(self.slews):
                for j, load in enumerate(self.loads):
                    lines.append(
                        f"{arc_name},{slew:.6g},{load:.6g},"
                        f"{arc.delay[i][j]:.8g},"
                        f"{arc.out_slew[i][j]:.8g},"
                        f"{arc.energy[i][j]:.8g}"
                    )
        return "\n".join(lines) + "\n"

    def to_liberty(self) -> str:
        """Liberty-flavoured text block (indices in ns, loads in pF,
        energies folded into ``internal_power`` in fJ — the unit
        conventions of a typical ``.lib``)."""
        slews_ns = ", ".join(f"{s * 1e9:.6g}" for s in self.slews)
        loads_pf = ", ".join(f"{c * 1e12:.6g}" for c in self.loads)

        def grid(values, scale):
            rows = []
            for row in values:
                cells = ", ".join(f"{v * scale:.6g}" if math.isfinite(v)
                                  else "nan" for v in row)
                rows.append(f'        "{cells}"')
            return ", \\\n".join(rows)

        blocks = [f"cell ({self.gate}) {{"]
        for arc_name in sorted(self.arcs):
            arc = self.arcs[arc_name]
            direction = arc_name
            blocks.append(
                f"  timing () {{ /* output {direction} */\n"
                f"    cell_{direction} (delay_template) {{\n"
                f"      index_1 (\"{slews_ns}\"); /* input slew, ns */\n"
                f"      index_2 (\"{loads_pf}\"); /* load, pF */\n"
                f"      values ( \\\n{grid(arc.delay, 1e9)} );\n"
                f"    }}\n"
                f"    {direction}_transition (delay_template) {{\n"
                f"      values ( \\\n{grid(arc.out_slew, 1e9)} );\n"
                f"    }}\n"
                f"  }}"
            )
            blocks.append(
                f"  internal_power () {{ /* output {direction}, fJ */\n"
                f"    {direction}_power (energy_template) {{\n"
                f"      values ( \\\n{grid(arc.energy, 1e15)} );\n"
                f"    }}\n"
                f"  }}"
            )
        blocks.append("}")
        return "\n".join(blocks) + "\n"

    def render(self) -> str:
        """ASCII tables (ps / fJ units), one block per arc."""
        blocks = []
        headers = ["slew \\ load"] + [f"{c * 1e15:.2f} fF"
                                      for c in self.loads]
        for arc_name in sorted(self.arcs):
            arc = self.arcs[arc_name]
            for metric, unit, scale in (("delay", "ps", 1e12),
                                        ("out_slew", "ps", 1e12),
                                        ("energy", "fJ", 1e15)):
                rows = []
                values = getattr(arc, metric)
                for i, slew in enumerate(self.slews):
                    rows.append([f"{slew * 1e12:.1f} ps"]
                                + [values[i][j] * scale
                                   for j in range(len(self.loads))])
                blocks.append(ascii_table(
                    headers, rows,
                    title=f"{self.gate} output-{arc_name} "
                          f"{metric} [{unit}]",
                ))
        return "\n\n".join(blocks)
