"""Gate characterization engine: transient timing over a load x slew grid.

For every ``(input slew, output load)`` grid point one adaptive
transient simulates a full input pulse (rise edge, settled high, fall
edge, settled low) through the gate's driven test circuit, and three
metrics are measured per output arc:

* **delay** — 50% input crossing to 50% output crossing [s];
* **out_slew** — output 20%-80% transition time [s];
* **energy** — charge drawn from the VDD supply over the transition
  window times VDD, with the pre-edge leakage baseline subtracted [J].

The input edges are exact waveform breakpoints, so the adaptive
stepper lands on them and refines around the transition while coasting
through the settled plateaus — the workload the adaptive engine was
built for.  Simulation horizons are auto-scaled from the family's
drive strength (``load x VDD / Ion``), so one code path characterizes
femto-farad logic loads and much larger fan-out equivalents alike.

Failed measurements (output never crosses a threshold — e.g. a
degraded transmission-gate level) yield ``NaN`` cells rather than
aborting the table.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # numpy >= 2.0
    from numpy import trapezoid as _trapezoid
except ImportError:  # pragma: no cover - numpy 1.x
    from numpy import trapz as _trapezoid

from repro.characterize.gates import GateSpec, gate_spec
from repro.characterize.table import ArcTable, CharTable
from repro.circuit.batch_sim import batch_transient
from repro.circuit.solvers import BackendLike
from repro.circuit.logic import LogicFamily
from repro.circuit.results import Dataset
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.errors import AnalysisError, ParameterError

__all__ = ["characterize_gate", "characterize_points_batched",
           "DEFAULT_LOADS", "DEFAULT_SLEWS"]

#: Default output-load grid [F] (logic-family load to ~8x fan-out).
DEFAULT_LOADS = (1e-17, 4e-17, 8e-17)
#: Default input-slew grid [s] (0-100% ramp time).
DEFAULT_SLEWS = (1e-12, 4e-12, 1e-11)

#: Output-slew measurement thresholds (fractions of VDD).
SLEW_LO = 0.2
SLEW_HI = 0.8
#: Settling margin in units of the estimated drive time constant.
_SETTLE_TAUS = 40.0


def _drive_tau(family: LogicFamily, load_f: float) -> float:
    """Crude output time-constant estimate ``load x VDD / Ion`` [s]."""
    ion = abs(family.n_device.ids(family.vdd, family.vdd))
    if ion <= 0.0:
        return 1e-12
    return load_f * family.vdd / ion


def _first_crossing_in(dataset: Dataset, trace: str, level: float,
                       t0: float, t1: float,
                       rising: Optional[bool] = None) -> float:
    """First crossing of ``level`` inside ``[t0, t1)``; NaN if none.

    Windowed through :meth:`Dataset.first_crossing`, so lazy
    (store-backed) datasets read only the window's rows.
    """
    return dataset.first_crossing(trace, level, rising=rising,
                                  after=t0, before=t1)


def _supply_energy(dataset: Dataset, vdd: float, t0: float,
                   t1: float) -> float:
    """Energy delivered by the VDD source over ``[t0, t1]`` [J].

    The branch current of ``vdd_src`` follows the SPICE sink
    convention (positive into the + terminal), so delivered power is
    ``-vdd * i``; the leakage baseline just before ``t0`` is
    subtracted so plateau leakage does not bill the transition.
    """
    t, i = dataset.window("i(vdd_src)", t0, t1)
    mask = (t >= t0) & (t <= t1)
    if mask.sum() < 2:
        return math.nan
    i_leak = float(np.interp(t0, t, i))
    return float(-vdd * _trapezoid(i[mask] - i_leak, t[mask]))


def _measure_arc(dataset: Dataset, out: str, vdd: float,
                 t_in_50: float, window: Tuple[float, float],
                 out_rising: bool) -> Dict[str, float]:
    """Delay / output slew / energy of one transition window."""
    t0, t1 = window
    trace = f"v({out})"
    t_out_50 = _first_crossing_in(dataset, trace, 0.5 * vdd, t0, t1,
                                  rising=out_rising)
    lo, hi = SLEW_LO * vdd, SLEW_HI * vdd
    if out_rising:
        t_a = _first_crossing_in(dataset, trace, lo, t0, t1, rising=True)
        t_b = _first_crossing_in(dataset, trace, hi, t0, t1, rising=True)
    else:
        t_a = _first_crossing_in(dataset, trace, hi, t0, t1, rising=False)
        t_b = _first_crossing_in(dataset, trace, lo, t0, t1, rising=False)
    return {
        "delay": t_out_50 - t_in_50,
        "out_slew": t_b - t_a,
        "energy": _supply_energy(dataset, vdd, t0, t1),
    }


def characterize_gate(family: LogicFamily, gate: str = "nand2",
                      loads: Sequence[float] = DEFAULT_LOADS,
                      slews: Sequence[float] = DEFAULT_SLEWS,
                      method: str = "trap",
                      rtol: Optional[float] = None,
                      atol: Optional[float] = None,
                      use_batch: bool = True,
                      backend: BackendLike = None,
                      workers: "int | str | None" = 1) -> CharTable:
    """Characterize ``gate`` over a ``loads x slews`` grid.

    Parameters
    ----------
    family : LogicFamily
        Device pair and supply; ``family.load_f`` is overridden by each
        grid load.
    gate : str
        A :data:`repro.characterize.GATES` key (``nand2``, ``nor2``,
        ``nand3``, ``inverter``, ``tgate``).
    loads : sequence of float
        Output load capacitances [F].
    slews : sequence of float
        Input 0-100% transition times [s].
    method : {"trap", "be"}
        Integration method for the adaptive transients.
    rtol, atol : float, optional
        LTE tolerances forwarded to :func:`repro.circuit.transient`.
    use_batch : bool
        Run the whole grid as one lane-batched transient (default):
        every grid point is a lane of a single lock-step integration
        (see :mod:`repro.circuit.batch_sim`) instead of its own scalar
        transient — several times faster on realistic grids.  Metrics
        agree with the scalar path to well below measurement
        resolution (both waveform sets satisfy the same LTE
        tolerance); ``False`` forces the per-point scalar loop.
    backend : None, str or LinearSolverBackend, optional
        Linear-solver backend for every transient of the run
        (``"auto"`` / ``"dense"`` / ``"sparse"``; see
        :func:`repro.circuit.solvers.resolve_backend`).
    workers : int, "auto" or None
        Shard the batched grid into that many contiguous tiles, one
        lane-batched transient per forked process
        (:func:`repro.parallel.resolve_workers` semantics: ``"auto"``
        / ``None`` / ``0`` honour ``REPRO_WORKERS``, else every
        core).  Each tile computes its own shared pulse-timing
        envelope, so tiled metrics agree with the single-batch run
        within the LTE tolerance of the transients (both waveform
        sets satisfy it) rather than bitwise — the same contract as
        batch-vs-scalar.  Default 1 keeps the single-batch behaviour.

    Returns
    -------
    CharTable
        Grids ``[i_slew][j_load]`` per output arc (``rise``/``fall``).
    """
    spec = gate_spec(gate)
    loads = tuple(float(c) for c in loads)
    slews = tuple(float(s) for s in slews)
    if not loads or any(c <= 0.0 for c in loads):
        raise ParameterError(f"loads must be positive: {loads}")
    if not slews or any(s <= 0.0 for s in slews):
        raise ParameterError(f"slews must be positive: {slews}")
    vdd = family.vdd
    engine = "scalar"
    if use_batch and len(loads) * len(slews) > 1:
        run_stats: Dict[str, str] = {}
        points = _characterize_grid_batched(spec, family, slews, loads,
                                            method, rtol, atol,
                                            run_stats, backend=backend,
                                            workers=workers)
        engine = run_stats.get("engine", "batch")
    else:
        points = {
            (i, j): _characterize_point(spec, family, slew, load,
                                        method, rtol, atol,
                                        backend=backend)
            for i, slew in enumerate(slews)
            for j, load in enumerate(loads)
        }
    arcs = {"rise": ArcTable(), "fall": ArcTable()}
    for i in range(len(slews)):
        rows: Dict[str, Dict[str, list]] = {
            name: {m: [] for m in ("delay", "out_slew", "energy")}
            for name in arcs
        }
        for j in range(len(loads)):
            for arc_name, metrics in points[(i, j)].items():
                for metric, value in metrics.items():
                    rows[arc_name][metric].append(value)
        for arc_name, metrics in rows.items():
            arcs[arc_name].delay.append(metrics["delay"])
            arcs[arc_name].out_slew.append(metrics["out_slew"])
            arcs[arc_name].energy.append(metrics["energy"])
    return CharTable(
        gate=gate, vdd=vdd, slews=slews, loads=loads, arcs=arcs,
        meta={
            "model": family.n_device.model_name
            if hasattr(family.n_device, "model_name") else "reference",
            "method": method,
            "rtol": rtol,
            "atol": atol,
            "slew_thresholds": [SLEW_LO, SLEW_HI],
            "inverting": spec.inverting,
            #: the engine that actually produced the table — "scalar"
            #: also covers single-point grids and the whole-batch
            #: fallback, so provenance is never mislabelled
            "engine": engine,
        },
    )


def _point_timing(family: LogicFamily, slew: float,
                  load: float) -> Tuple[float, float, float]:
    """Auto-scaled pulse timing of one grid point: ``(t0, width,
    settle)`` from the family's drive strength at this load."""
    tau = _drive_tau(family, load)
    settle = max(_SETTLE_TAUS * tau, 10.0 * slew, 2e-12)
    t0 = max(2.0 * tau, 1e-12)
    return t0, settle, settle


def _point_setup(spec: GateSpec, family: LogicFamily, slew: float,
                 load: float,
                 timing: Optional[Tuple[float, float, float]] = None):
    """Driven test circuit and pulse timing for one grid point.

    ``timing`` overrides the per-point ``(t0, width, settle)`` — the
    batched grid shares one timing envelope (the grid maximum) so every
    lane's pulse corners align and the lock-step grid stays sparse;
    the measurements are unchanged because the shared envelope only
    ever *extends* the settled plateaus.

    Returns ``(circuit, vout, t0, width, tstop)``.
    """
    vdd = family.vdd
    if timing is None:
        timing = _point_timing(family, slew, load)
    t0, width, settle = timing
    wave = Pulse(0.0, vdd, delay=t0, rise=slew, fall=slew,
                 width=width, period=4.0 * (t0 + 2 * slew + width))
    circuit, _vin, vout = spec.build(family, wave, load)
    tstop = t0 + slew + width + slew + settle
    return circuit, vout, t0, width, tstop


_NAN_POINT = {m: math.nan for m in ("delay", "out_slew", "energy")}


def _measure_point(dataset: Dataset, spec: GateSpec, vout: str,
                   vdd: float, slew: float, t0: float, width: float,
                   tstop: float) -> Dict[str, Dict]:
    """Both arc measurements of one grid point's waveform set."""
    # Input 50% crossings are analytic (the Pulse is exact).
    t_in_rise_50 = t0 + 0.5 * slew
    t_in_fall_50 = t0 + slew + width + 0.5 * slew
    window_a = (t0, t0 + slew + width)      # input rising edge
    window_b = (t0 + slew + width, tstop)   # input falling edge
    # Output arc direction per window depends on gate polarity.
    if spec.inverting:
        fall = _measure_arc(dataset, vout, vdd, t_in_rise_50, window_a,
                            out_rising=False)
        rise = _measure_arc(dataset, vout, vdd, t_in_fall_50, window_b,
                            out_rising=True)
    else:
        rise = _measure_arc(dataset, vout, vdd, t_in_rise_50, window_a,
                            out_rising=True)
        fall = _measure_arc(dataset, vout, vdd, t_in_fall_50, window_b,
                            out_rising=False)
    return {"rise": rise, "fall": fall}


#: interior points forced into each input ramp of a scalar
#: characterization transient.  The ramp is exactly linear, so
#: voltage-LTE control never refines it — but the supply *current*
#: spikes there (gate-coupling displacement), and integrating it on an
#: unrefined ramp under-counts the energy metric by ~2x at fF loads.
#: Forcing sub-steps bounds that error to ~10% of the (near-
#: cancelling) edge integral; the lane-batched path resolves the ramp
#: through its denser shared grid instead.
_RAMP_SUBDIVISIONS = 8


def _characterize_point(spec: GateSpec, family: LogicFamily, slew: float,
                        load: float, method: str,
                        rtol: Optional[float],
                        atol: Optional[float],
                        backend: BackendLike = None) -> Dict[str, Dict]:
    """One scalar transient covering both arcs of a single grid point."""
    circuit, vout, t0, width, tstop = _point_setup(spec, family, slew,
                                                   load)
    ramps = ((t0, t0 + slew),
             (t0 + slew + width, t0 + slew + width + slew))
    forced = [
        a + (b - a) * k / (_RAMP_SUBDIVISIONS + 1)
        for a, b in ramps for k in range(1, _RAMP_SUBDIVISIONS + 1)
    ]
    try:
        dataset = transient(circuit, tstop=tstop, method=method,
                            rtol=rtol, atol=atol,
                            extra_breakpoints=forced,
                            record_currents="sources",
                            backend=backend)
    except AnalysisError:
        return {"rise": dict(_NAN_POINT), "fall": dict(_NAN_POINT)}
    return _measure_point(dataset, spec, vout, family.vdd, slew, t0,
                          width, tstop)


def characterize_points_batched(spec: GateSpec,
                                lanes: Sequence[Tuple[LogicFamily,
                                                      float, float]],
                                method: str = "trap",
                                rtol: Optional[float] = None,
                                atol: Optional[float] = None,
                                stats: Optional[dict] = None,
                                backend: BackendLike = None
                                ) -> List[Dict[str, Dict]]:
    """Characterize many ``(family, slew, load)`` points as one
    lane-batched transient; one arc-metrics dict per lane.

    Serves both grid characterization (one family, many slew/load
    points) and Monte-Carlo gate timing (many sampled families, one
    nominal point).  All lanes share one pulse-timing envelope (the
    element-wise maximum of the per-point auto-scaled timings): every
    lane's pulse corners align, so the union breakpoint schedule of
    the lock-step grid stays sparse — and extending a settled plateau
    never changes a measurement.

    Failure semantics match the scalar path point for point: lanes
    that fail in lock-step are re-run scalar-side by the batch engine
    itself; a whole-batch failure falls back to the per-point scalar
    loop; a point that fails even scalar-side reports NaN metrics.
    ``stats`` (optional dict) records which ``"engine"`` produced the
    results (``"batch"`` or ``"scalar"`` after a whole-batch
    fallback).
    """
    timings = [_point_timing(family, slew, load)
               for family, slew, load in lanes]
    shared = (max(t[0] for t in timings), max(t[1] for t in timings),
              max(t[2] for t in timings))
    setups = [
        _point_setup(spec, family, slew, load, timing=shared)
        for family, slew, load in lanes
    ]
    tstops = [s[4] for s in setups]
    try:
        result = batch_transient(
            [s[0] for s in setups], tstops, method=method, rtol=rtol,
            atol=atol, dt_min=min(tstops) * 1e-9,
            record_currents="sources", backend=backend,
        )
    except AnalysisError:
        if stats is not None:
            stats["engine"] = "scalar"
        return [
            _characterize_point(spec, family, slew, load, method,
                                rtol, atol)
            for family, slew, load in lanes
        ]
    if stats is not None:
        stats["engine"] = "batch"
    fallback = set(result.fallback_lanes)
    points = []
    for lane, (family, slew, load) in enumerate(lanes):
        if lane in fallback or result.datasets[lane] is None:
            # The batch engine's internal scalar re-run integrates the
            # lane without the forced ramp sub-steps, which would
            # silently degrade that cell's energy metric relative to
            # its neighbours; re-measure it through the ramp-forced
            # scalar point path instead (NaN if it fails there too).
            points.append(_characterize_point(spec, family, slew, load,
                                              method, rtol, atol,
                                              backend=backend))
            continue
        _circuit, vout, t0, width, tstop = setups[lane]
        points.append(_measure_point(result.datasets[lane], spec, vout,
                                     family.vdd, slew, t0, width,
                                     tstop))
    return points


def _characterize_grid_batched(spec: GateSpec, family: LogicFamily,
                               slews: Sequence[float],
                               loads: Sequence[float], method: str,
                               rtol: Optional[float],
                               atol: Optional[float],
                               stats: Optional[dict] = None,
                               backend: BackendLike = None,
                               workers: "int | str | None" = 1
                               ) -> Dict[Tuple[int, int], Dict]:
    """The load x slew grid as lane-batched transients — one batch, or
    ``workers`` contiguous tiles sharded over forked processes."""
    from repro.parallel import fork_map, resolve_workers

    cells = [(i, j) for i in range(len(slews))
             for j in range(len(loads))]
    lanes = [(family, slews[i], loads[j]) for i, j in cells]
    count = min(resolve_workers(workers), len(cells))
    if count <= 1:
        points = characterize_points_batched(
            spec, lanes, method, rtol, atol, stats, backend=backend)
        return dict(zip(cells, points))
    bounds = [round(k * len(cells) / count) for k in range(count + 1)]
    tiles = [lanes[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]

    def _tile(tile_lanes):
        tile_stats: Dict[str, str] = {}
        result = characterize_points_batched(
            spec, tile_lanes, method, rtol, atol, tile_stats,
            backend=backend)
        return tile_stats.get("engine", "batch"), result

    sharded = fork_map(_tile, tiles, count)
    if stats is not None:
        engines = {engine for engine, _ in sharded}
        stats["engine"] = ("batch" if engines == {"batch"}
                          else "/".join(sorted(engines)))
    points = [p for _, tile_points in sharded for p in tile_points]
    return dict(zip(cells, points))
