"""Gate registry for the characterization engine.

A :class:`GateSpec` describes everything the engine needs to time a
gate: how to build the driven test circuit from a
:class:`~repro.circuit.logic.LogicFamily`, which node switches, whether
the output inverts, and what the non-switching inputs are tied to
(their *non-controlling* level, so the switching input alone decides
the output).

Available gates (:data:`GATES`): ``inverter``, ``nand2``, ``nor2``,
``nand3`` and the non-inverting transmission-gate buffer ``tgate``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.circuit.logic import (
    LogicFamily,
    build_inverter,
    build_nand2,
    build_nand3,
    build_nor2,
    build_tgate_buffer,
)
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Waveform
from repro.errors import ParameterError

__all__ = ["GateSpec", "GATES", "gate_spec"]


@dataclass(frozen=True)
class GateSpec:
    """Characterization recipe of one logic gate.

    Attributes
    ----------
    name : str
        Registry key (also the CLI ``--gate`` value).
    n_inputs : int
        Logical input count (the switching input is always the first).
    inverting : bool
        Whether the output transitions opposite to the input.
    non_controlling : float
        Side-input level as a fraction of VDD (1.0 for NAND-style
        gates, 0.0 for NOR-style); irrelevant for single-input gates.
    builder : callable
        ``builder(family, wave) -> (circuit, in_node, out_node)`` —
        the driven test circuit with the switching input attached to
        ``wave`` and every side input tied to its non-controlling
        level.
    description : str
        One-line summary for ``--help`` and docs.
    """

    name: str
    n_inputs: int
    inverting: bool
    non_controlling: float
    builder: Callable[[LogicFamily, Waveform],
                      Tuple[Circuit, str, str]]
    description: str

    def build(self, family: LogicFamily, wave: Waveform,
              load_f: float) -> Tuple[Circuit, str, str]:
        """Driven test circuit with the output loaded by ``load_f`` [F].

        Returns ``(circuit, input_node, output_node)``.
        """
        loaded = dataclasses.replace(family, load_f=float(load_f))
        return self.builder(loaded, wave)


def _build_nand2(family, wave):
    circuit, vout = build_nand2(family, wave_a=wave, wave_b=family.vdd)
    return circuit, "a", vout


def _build_nor2(family, wave):
    circuit, vout = build_nor2(family, wave_a=wave, wave_b=0.0)
    return circuit, "a", vout


def _build_nand3(family, wave):
    circuit, vout = build_nand3(family, wave_a=wave, wave_b=family.vdd,
                                wave_c=family.vdd)
    return circuit, "a", vout


def _build_tgate(family, wave):
    circuit, vout = build_tgate_buffer(family, vin_wave=wave)
    return circuit, "in", vout


#: name -> GateSpec of every characterizable gate.
GATES: Dict[str, GateSpec] = {
    spec.name: spec for spec in (
        GateSpec("inverter", 1, True, 0.0, build_inverter,
                 "complementary inverter (n + p CNFET)"),
        GateSpec("nand2", 2, True, 1.0, _build_nand2,
                 "2-input NAND, input A switching, B tied high"),
        GateSpec("nor2", 2, True, 0.0, _build_nor2,
                 "2-input NOR, input A switching, B tied low"),
        GateSpec("nand3", 3, True, 1.0, _build_nand3,
                 "3-input NAND, input A switching, B/C tied high"),
        GateSpec("tgate", 1, False, 0.0, _build_tgate,
                 "enabled transmission-gate buffer (non-inverting)"),
    )
}


def gate_spec(name: str) -> GateSpec:
    """Look up a gate by name; raises
    :class:`~repro.errors.ParameterError` for unknown names."""
    try:
        return GATES[name]
    except KeyError:
        raise ParameterError(
            f"unknown gate {name!r}; expected one of {sorted(GATES)}"
        ) from None
