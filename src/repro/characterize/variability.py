"""Gate-delay Monte-Carlo evaluator: characterization meets variability.

Bridges :mod:`repro.characterize` into the campaign engine of
:mod:`repro.variability`: every sampled device pair is characterized at
one nominal ``(input slew, output load)`` point and reports

``delay_rise`` / ``delay_fall``
    50%-to-50% propagation delays of the two output arcs [s];
``out_slew``
    mean of the two output 20%-80% transition times [s];
``energy``
    total supply energy of a full output cycle (both arcs) [J].

Like the other circuit evaluators it deduplicates samples by quantised
device key and can fan distinct keys out over a multiprocessing pool
(``workers``).  Use it through ``python -m repro mc --workload gate``
or :func:`repro.experiments.workloads.variability_workload`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.characterize.engine import (
    characterize_gate,
    characterize_points_batched,
)
from repro.characterize.gates import gate_spec
from repro.errors import ParameterError, ReproError
from repro.variability.circuits import _CircuitEvaluatorBase
from repro.variability.params import ParameterSpace

__all__ = ["GateDelayEvaluator"]


class GateDelayEvaluator(_CircuitEvaluatorBase):
    """Per-sample gate timing/energy at one nominal slew/load point.

    Parameters
    ----------
    space : ParameterSpace
        Sampled device knobs (shared by the n and mirrored p device).
    gate : str
        Gate to characterize (a :data:`repro.characterize.GATES` key).
    slew : float
        Input 0-100% transition time [s].
    load : float
        Output load capacitance [F].
    vdd : float
        Supply voltage [V].
    model : str
        Fast-model name (``model1``/``model2``).
    workers : int
        Multiprocessing pool size for distinct device keys.
    """

    METRICS = ("delay_rise", "delay_fall", "out_slew", "energy")

    def __init__(self, space: ParameterSpace, gate: str = "nand2",
                 slew: float = 4e-12, load: float = 4e-17,
                 vdd: float = 0.6, model: str = "model2",
                 workers: int = 1,
                 quantize: Optional[Mapping[str, int]] = None,
                 spec_limits: Optional[Mapping[str, Tuple]] = None,
                 use_batch: bool = True,
                 backend: Optional[str] = None) -> None:
        super().__init__(space, vdd, model, workers, quantize,
                         spec_limits, use_batch, backend)
        gate_spec(gate)  # validate early
        if slew <= 0.0 or load <= 0.0:
            raise ParameterError(
                f"slew and load must be > 0: slew={slew!r}, load={load!r}"
            )
        self.gate = gate
        self.slew = float(slew)
        self.load = float(load)

    def describe(self) -> Dict:
        """JSON-able evaluator fingerprint (campaign manifests)."""
        return {"kind": "gate-delay", "gate": self.gate,
                "slew": self.slew, "load": self.load, "vdd": self.vdd,
                "model": self.model, "quantize": self.quantize,
                "spec_limits": {k: list(v)
                                for k, v in self.spec_limits.items()}
                if self.spec_limits else None}

    def _nan_metrics(self) -> Dict[str, float]:
        return {m: math.nan for m in self.METRICS}

    def _evaluate_key(self, key: Tuple) -> Dict[str, float]:
        family = self._family(key)
        table = characterize_gate(family, self.gate,
                                  loads=(self.load,), slews=(self.slew,),
                                  backend=self.backend)
        rise, fall = table.arcs["rise"], table.arcs["fall"]
        return self._point_metrics({"rise": {
            "delay": rise.delay[0][0], "out_slew": rise.out_slew[0][0],
            "energy": rise.energy[0][0],
        }, "fall": {
            "delay": fall.delay[0][0], "out_slew": fall.out_slew[0][0],
            "energy": fall.energy[0][0],
        }})

    @staticmethod
    def _point_metrics(point: Dict[str, Dict[str, float]]
                       ) -> Dict[str, float]:
        rise, fall = point["rise"], point["fall"]
        return {
            "delay_rise": rise["delay"],
            "delay_fall": fall["delay"],
            "out_slew": 0.5 * (rise["out_slew"] + fall["out_slew"]),
            "energy": rise["energy"] + fall["energy"],
        }

    def _evaluate_keys_batch(self, keys: Sequence[Tuple]
                             ) -> List[Dict[str, float]]:
        """One lock-step characterization: every distinct sampled
        device pair is a lane of a single batched transient at the
        evaluator's nominal slew/load point."""
        spec = gate_spec(self.gate)
        try:
            points = characterize_points_batched(
                spec,
                [(self._family(key), self.slew, self.load)
                 for key in keys],
                backend=self.backend,
            )
        except ReproError:
            return [self._evaluate_key_safe(key) for key in keys]
        return [self._point_metrics(point) for point in points]
