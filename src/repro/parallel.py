"""Process-level sharding for embarrassingly parallel work.

The engine's scale loops — Monte-Carlo chunks, characterization grid
tiles, stacked DC sweeps — are independent by construction, so they
shard across processes with no coordination beyond "split, run,
concatenate".  This module is that mechanism:

* :func:`resolve_workers` turns a worker spec (``None`` / ``0`` /
  ``"auto"`` / an int) into a process count, honouring the
  ``REPRO_WORKERS`` environment override before falling back to
  ``os.cpu_count()``.
* :func:`fork_map` maps a callable over items through a fork-based
  ``ProcessPoolExecutor``.  Fork inheritance is the shared-memory
  mechanism: the callable and the item list are published in a module
  global *before* the pool spawns, so each worker reads the parent's
  arrays copy-on-write instead of receiving a pickle of them — only
  the (small) per-item results travel back over the pipe.  Platforms
  without ``fork`` (and nested ``fork_map`` calls) degrade to the
  serial loop, same results.

Crash-recovery contract (docs/robustness.md): a worker process dying
hard — OOM killer, segfault, ``os._exit`` — breaks the whole pool
(``BrokenProcessPool``), but the parent still holds ``fn`` and
``items``.  :func:`fork_map` therefore collects every result that
completed before the crash and re-runs the unfinished items serially
in the parent, so a killed worker costs time, never results.  A
``timeout=`` bounds the whole sharded wait instead: a wedged item
cannot be recovered by re-running it, so the run fails with a
:class:`repro.errors.ParallelError` naming the unfinished items.

Determinism note: sharding never changes *what* is computed, only
where.  Work whose numerics depend on how items are grouped (e.g. the
shared pulse envelope of a lane-batched characterization grid) must
shard at the grouping boundary and document the tolerance — see
``characterize_gate(workers=...)``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import faults
from repro.errors import ParallelError, ParameterError

__all__ = ["resolve_workers", "fork_map", "WORKERS_ENV"]

_log = logging.getLogger("repro.parallel")

#: Environment override consulted by ``resolve_workers(None)`` — lets
#: ``repro mc`` / ``repro characterize`` runs pin their process count
#: without touching the command line.
WORKERS_ENV = "REPRO_WORKERS"

WorkerSpec = Union[None, int, str]

#: (fn, items) inherited by forked workers; ``None`` outside a
#: ``fork_map`` call.  Module-global on purpose: fork shares it
#: copy-on-write, which is what keeps large item lists unpickled.
_WORK = None


def resolve_workers(workers: WorkerSpec = None) -> int:
    """Resolve a worker spec to a process count (>= 1).

    ``None`` / ``0`` / ``"auto"`` resolve to the ``REPRO_WORKERS``
    environment variable when set, else ``os.cpu_count()``.  Positive
    integers (or their strings) pass through.
    """
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = None
        else:
            try:
                workers = int(workers)
            except ValueError:
                raise ParameterError(
                    f"workers must be a positive int, 0/'auto' or None: "
                    f"{workers!r}") from None
    if isinstance(workers, bool):
        raise ParameterError(
            f"workers must be a positive int, 0/'auto' or None: "
            f"{workers!r}")
    if workers is None or workers == 0:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ParameterError(
                    f"{WORKERS_ENV} must be an integer: {env!r} "
                    f"(unset it or set a positive process count)"
                ) from None
            if workers < 1:
                raise ParameterError(
                    f"{WORKERS_ENV} must be >= 1: {env!r} "
                    f"(unset it or set a positive process count)")
            return workers
        return os.cpu_count() or 1
    if not isinstance(workers, int) or workers < 1:
        raise ParameterError(
            f"workers must be a positive int, 0/'auto' or None: "
            f"{workers!r}")
    return workers


def _can_fork() -> bool:
    if sys.platform == "win32":  # pragma: no cover - POSIX container
        return False
    return "fork" in multiprocessing.get_all_start_methods()


class _ItemFailure:
    """Pickled back from a worker: ``fn(items[index])`` raised.

    Carrying the index explicitly is what preserves per-item
    attribution with ``chunksize > 1`` — the future alone only knows
    the chunk.
    """

    def __init__(self, index: int, error: BaseException) -> None:
        self.index = index
        self.error = error


def _invoke_chunk(indices: Sequence[int]) -> list:
    """Worker body: evaluate one chunk of item indices in order.

    Returns results aligned with the chunk prefix; an item whose
    ``fn`` raised terminates the chunk with an :class:`_ItemFailure`
    (mirroring the serial loop, which stops at the first error).
    """
    fn, items = _WORK
    out: list = []
    for index in indices:
        if faults.fire("parallel.worker_kill", key=index):
            # Simulated OOM kill: no exception, no cleanup, no result.
            os._exit(86)
        try:
            out.append(fn(items[index]))
        except Exception as exc:
            out.append(_ItemFailure(index, exc))
            break
    return out


def _annotate(exc: BaseException, index: int, where: str) -> None:
    """Attach the original item index to an exception (PEP 678 note)."""
    note = f"fork_map: raised by item {index} ({where})"
    try:
        exc.add_note(note)
    except AttributeError:  # pragma: no cover - pre-3.11 fallback
        exc.args = (f"{exc.args[0] if exc.args else exc!r} [{note}]",
                    *exc.args[1:])


def fork_map(fn: Callable, items: Sequence,
             workers: WorkerSpec = None,
             chunksize: Optional[int] = None,
             timeout: Optional[float] = None) -> List:
    """``[fn(item) for item in items]`` sharded over forked processes.

    ``fn`` and ``items`` are inherited by the workers through fork
    (copy-on-write — nothing is pickled going in; results are pickled
    coming back), so ``fn`` may be a bound method closing over large
    state.  Order is preserved.  Runs serially — same results — when
    the resolved worker count or the item count is 1, when ``fork`` is
    unavailable, or inside a nested ``fork_map``.

    Exceptions raised by ``fn`` propagate to the caller with a note
    naming the original item index (also with ``chunksize > 1``);
    callers that want failure-as-data semantics wrap ``fn``
    accordingly, exactly as in the serial loop.

    Recovery semantics (docs/robustness.md):

    * a worker process that *dies* (OOM kill, segfault) breaks the
      pool; the completed results are kept and the unfinished items
      are re-run serially in the parent — same results, more time;
    * ``timeout`` bounds the whole sharded wait in seconds; on expiry
      a :class:`repro.errors.ParallelError` names the unfinished
      items (a wedged item would wedge the serial re-run too, so no
      recovery is attempted — the stuck workers are abandoned).
    """
    global _WORK
    items = list(items)
    count = min(resolve_workers(workers), len(items))
    if timeout is not None and timeout <= 0:
        raise ParameterError(f"timeout must be > 0 or None: {timeout!r}")
    if chunksize is not None and chunksize < 1:
        raise ParameterError(f"chunksize must be >= 1: {chunksize!r}")
    if count <= 1 or _WORK is not None or not _can_fork():
        return [fn(item) for item in items]
    size = chunksize or 1
    index_chunks = [list(range(start, min(start + size, len(items))))
                    for start in range(0, len(items), size)]
    _WORK = (fn, items)
    results: Dict[int, object] = {}
    unfinished: List[int] = []
    try:
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(max_workers=min(count,
                                                   len(index_chunks)),
                                   mp_context=context)
        try:
            futures = {pool.submit(_invoke_chunk, chunk): chunk
                       for chunk in index_chunks}
            done, pending = wait(futures, timeout=timeout)
            if pending:
                stuck = sorted(i for f in pending for i in futures[f])
                for future in pending:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise ParallelError(
                    f"fork_map timed out after {timeout:g}s with "
                    f"{len(stuck)} unfinished item(s) "
                    f"(indices {stuck[:8]}{'...' if len(stuck) > 8 else ''}"
                    f"); a wedged item cannot be recovered by re-running",
                    indices=tuple(stuck))
            failure: Optional[_ItemFailure] = None
            for future, chunk in futures.items():
                try:
                    values = future.result()
                except BrokenProcessPool:
                    # Worker died hard; this chunk (and possibly
                    # others) never reported.  Recovered below.
                    unfinished.extend(chunk)
                    continue
                for index, value in zip(chunk, values):
                    if isinstance(value, _ItemFailure):
                        if failure is None or value.index < failure.index:
                            failure = value
                    else:
                        results[index] = value
            if failure is not None:
                _annotate(failure.error, failure.index, "in a worker")
                raise failure.error
        finally:
            pool.shutdown(wait=False)
    finally:
        _WORK = None
    if unfinished:
        _log.warning(
            "fork_map: worker process died; re-running %d unfinished "
            "item(s) serially in the parent", len(unfinished))
        for index in sorted(unfinished):
            try:
                results[index] = fn(items[index])
            except Exception as exc:
                _annotate(exc, index, "during the post-crash serial "
                                      "re-run")
                raise
    return [results[index] for index in range(len(items))]
