"""Process-level sharding for embarrassingly parallel work.

The engine's scale loops — Monte-Carlo chunks, characterization grid
tiles, stacked DC sweeps — are independent by construction, so they
shard across processes with no coordination beyond "split, run,
concatenate".  This module is that mechanism:

* :func:`resolve_workers` turns a worker spec (``None`` / ``0`` /
  ``"auto"`` / an int) into a process count, honouring the
  ``REPRO_WORKERS`` environment override before falling back to
  ``os.cpu_count()``.
* :func:`fork_map` maps a callable over items through a fork-based
  ``ProcessPoolExecutor``.  Fork inheritance is the shared-memory
  mechanism: the callable and the item list are published in a module
  global *before* the pool spawns, so each worker reads the parent's
  arrays copy-on-write instead of receiving a pickle of them — only
  the (small) per-item results travel back over the pipe.  Platforms
  without ``fork`` (and nested ``fork_map`` calls) degrade to the
  serial loop, same results.

Determinism note: sharding never changes *what* is computed, only
where.  Work whose numerics depend on how items are grouped (e.g. the
shared pulse envelope of a lane-batched characterization grid) must
shard at the grouping boundary and document the tolerance — see
``characterize_gate(workers=...)``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ParameterError

__all__ = ["resolve_workers", "fork_map", "WORKERS_ENV"]

#: Environment override consulted by ``resolve_workers(None)`` — lets
#: ``repro mc`` / ``repro characterize`` runs pin their process count
#: without touching the command line.
WORKERS_ENV = "REPRO_WORKERS"

WorkerSpec = Union[None, int, str]

#: (fn, items) inherited by forked workers; ``None`` outside a
#: ``fork_map`` call.  Module-global on purpose: fork shares it
#: copy-on-write, which is what keeps large item lists unpickled.
_WORK = None


def resolve_workers(workers: WorkerSpec = None) -> int:
    """Resolve a worker spec to a process count (>= 1).

    ``None`` / ``0`` / ``"auto"`` resolve to the ``REPRO_WORKERS``
    environment variable when set, else ``os.cpu_count()``.  Positive
    integers (or their strings) pass through.
    """
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = None
        else:
            try:
                workers = int(workers)
            except ValueError:
                raise ParameterError(
                    f"workers must be a positive int, 0/'auto' or None: "
                    f"{workers!r}") from None
    if isinstance(workers, bool):
        raise ParameterError(
            f"workers must be a positive int, 0/'auto' or None: "
            f"{workers!r}")
    if workers is None or workers == 0:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ParameterError(
                    f"{WORKERS_ENV} must be an integer: {env!r} "
                    f"(unset it or set a positive process count)"
                ) from None
            if workers < 1:
                raise ParameterError(
                    f"{WORKERS_ENV} must be >= 1: {env!r} "
                    f"(unset it or set a positive process count)")
            return workers
        return os.cpu_count() or 1
    if not isinstance(workers, int) or workers < 1:
        raise ParameterError(
            f"workers must be a positive int, 0/'auto' or None: "
            f"{workers!r}")
    return workers


def _can_fork() -> bool:
    if sys.platform == "win32":  # pragma: no cover - POSIX container
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(index: int):
    fn, items = _WORK
    return fn(items[index])


def fork_map(fn: Callable, items: Sequence,
             workers: WorkerSpec = None,
             chunksize: Optional[int] = None) -> List:
    """``[fn(item) for item in items]`` sharded over forked processes.

    ``fn`` and ``items`` are inherited by the workers through fork
    (copy-on-write — nothing is pickled going in; results are pickled
    coming back), so ``fn`` may be a bound method closing over large
    state.  Order is preserved.  Runs serially — same results — when
    the resolved worker count or the item count is 1, when ``fork`` is
    unavailable, or inside a nested ``fork_map``.

    Exceptions raised by ``fn`` propagate to the caller (out of the
    pool in the sharded case); callers that want failure-as-data
    semantics wrap ``fn`` accordingly, exactly as in the serial loop.
    """
    global _WORK
    items = list(items)
    count = min(resolve_workers(workers), len(items))
    if count <= 1 or _WORK is not None or not _can_fork():
        return [fn(item) for item in items]
    _WORK = (fn, items)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=count,
                                 mp_context=context) as pool:
            return list(pool.map(_invoke, range(len(items)),
                                 chunksize=chunksize or 1))
    finally:
        _WORK = None
