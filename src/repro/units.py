"""Small unit-handling helpers.

The library keeps a strict internal convention (SI + energies in eV) and
these helpers exist at the boundaries: engineering-notation parsing for
netlists and human-readable formatting for reports.
"""

from __future__ import annotations

import math
import re

#: SPICE engineering suffixes, longest-match-first where ambiguous.
#: Note SPICE tradition: ``m`` is milli and ``meg`` is mega.
_SUFFIX_SCALE = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "mil": 25.4e-6,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_spice_number(text: str) -> float:
    """Parse a SPICE-style number such as ``1.5k``, ``10u``, ``2meg``.

    Trailing unit letters after a recognised suffix are ignored, as in
    SPICE (``10uF`` == ``10u``).  Raises :class:`ValueError` when no
    numeric prefix can be extracted.
    """
    s = text.strip().lower()
    if not s:
        raise ValueError("empty number")
    # Split the leading float part (including scientific notation) from
    # the alphabetic suffix tail.
    match = re.match(r"[+-]?(\d+\.?\d*|\.\d+)(e[+-]?\d+)?", s)
    if match is None or match.start() != 0 or match.end() == 0:
        raise ValueError(f"cannot parse number from {text!r}")
    head, tail = s[: match.end()], s[match.end():]
    try:
        value = float(head)
    except ValueError as exc:
        raise ValueError(f"cannot parse number from {text!r}") from exc
    if not tail:
        return value
    # Longest-match: 'meg' and 'mil' take precedence over 'm'.
    for suffix in ("meg", "mil"):
        if tail.startswith(suffix):
            return value * _SUFFIX_SCALE[suffix]
    scale = _SUFFIX_SCALE.get(tail[0])
    if scale is None:
        # Unknown suffix letters are units, e.g. '5v' or '3ohm'.
        return value
    return value * scale


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(1.5e-9, 'A')
    == '1.5 nA'``.

    Zero, NaN and infinities are passed through without a prefix.
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def ev_to_joule(energy_ev: float) -> float:
    """Convert an energy from eV to joules."""
    return energy_ev * 1.602176634e-19


def joule_to_ev(energy_j: float) -> float:
    """Convert an energy from joules to eV."""
    return energy_j / 1.602176634e-19


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert Celsius to kelvin, rejecting temperatures below 0 K."""
    kelvin = temp_c + 273.15
    if kelvin < 0.0:
        raise ValueError(f"{temp_c!r} C is below absolute zero")
    return kelvin
