"""NAND2 gate characterization: delay / slew / energy surfaces.

Characterizes the complementary CNFET NAND2 over an input-slew x
output-load grid through the adaptive transient engine and prints the
liberty-style lookup tables as ASCII (docs/characterization.md explains
the measurement definitions).

Run:  python examples/gate_characterization.py
"""

from repro.characterize import characterize_gate
from repro.circuit.logic import LogicFamily

#: femto-farad loads and picosecond slews of the demo grid
LOADS_F = (1e-17, 4e-17, 8e-17)
SLEWS_S = (1e-12, 4e-12, 1e-11)


def main() -> None:
    family = LogicFamily.default(vdd=0.6, model="model2")
    table = characterize_gate(family, "nand2", loads=LOADS_F,
                              slews=SLEWS_S)
    print(table.render())
    rise = table.arcs["rise"]
    print()
    print("Sanity checks on the surface:")
    print(f"  delay grows with load: "
          f"{rise.delay[0][0]*1e12:.2f} ps @ {LOADS_F[0]*1e15:.2f} fF -> "
          f"{rise.delay[0][-1]*1e12:.2f} ps @ {LOADS_F[-1]*1e15:.2f} fF")
    cv2 = LOADS_F[-1] * family.vdd ** 2
    print(f"  rise energy ~ C*VDD^2: measured "
          f"{rise.energy[0][-1]*1e15:.3f} fJ vs C*VDD^2 = "
          f"{cv2*1e15:.3f} fJ (plus internal charge)")
    print("\nThe same tables are scriptable: "
          "`python -m repro characterize --gate nand2 --json`")


if __name__ == "__main__":
    main()
