"""Complementary CNFET inverter: DC transfer curve and noise margins.

Demonstrates the circuit engine with the fast device model — the
use-case the paper targets ("SPICE-like simulators where large numbers
of such devices may be used").

Run:  python examples/inverter_vtc.py
"""

import numpy as np

from repro.circuit import dc_sweep
from repro.circuit.logic import LogicFamily, build_inverter
from repro.experiments.report import ascii_table, sparkline


def main() -> None:
    vdd = 0.6
    family = LogicFamily.default(vdd=vdd, model="model2")
    circuit, vin, vout = build_inverter(family)

    sweep = np.linspace(0.0, vdd, 61)
    dataset = dc_sweep(circuit, "vin_src", sweep)
    v_out = dataset.voltage(vout)

    print("CNFET inverter VTC (n + mirrored-p model2 devices):")
    print(f"  in : {sparkline(sweep)}")
    print(f"  out: {sparkline(v_out)}")

    # Switching threshold and gain.
    switching = dataset.crossings(f"v({vout})", vdd / 2)[0]
    gain = float(np.max(-np.gradient(v_out, sweep)))

    # Noise margins from the unity-gain points.
    slope = -np.gradient(v_out, sweep)
    above = np.where(slope > 1.0)[0]
    vil, vih = sweep[above[0]], sweep[above[-1]]
    voh, vol = v_out[above[0]], v_out[above[-1]]
    nmh = voh - vih
    nml = vil - vol

    print()
    print(ascii_table(
        ("metric", "value"),
        [
            ("VDD", f"{vdd:.2f} V"),
            ("switching threshold VM", f"{switching:.3f} V"),
            ("max gain", f"{gain:.1f}"),
            ("VIL / VIH", f"{vil:.3f} / {vih:.3f} V"),
            ("NML / NMH", f"{nml:.3f} / {nmh:.3f} V"),
        ],
        title="Static metrics",
    ))

    # Short-circuit current peaks near VM — show the supply current.
    i_vdd = np.abs(dataset.current("vdd_src"))
    peak_at = sweep[int(np.argmax(i_vdd))]
    print(f"\npeak supply current {np.max(i_vdd)*1e6:.2f} uA at "
          f"VIN = {peak_at:.2f} V (short-circuit conduction around VM)")


if __name__ == "__main__":
    main()
