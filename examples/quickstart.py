"""Quickstart: fit a fast CNFET model and compare it with full theory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.experiments.report import ascii_table, sparkline
from repro.pwl import CNFET
from repro.reference import FETToyModel, FETToyParameters


def main() -> None:
    # The paper's stock device: (13,0) tube, 1.5 nm coaxial oxide,
    # T = 300 K, source Fermi level 0.32 eV below the band edge.
    params = FETToyParameters()

    # Baseline: full numerics (Newton-Raphson + Fermi/DOS integration).
    reference = FETToyModel(params)

    # The paper's Model 2: four-piece charge approximation, closed-form
    # self-consistent voltage.  Fitting happens once, here.
    fast = CNFET(params, model="model2")
    print(f"fitted {fast.model_name}: charge RMS = "
          f"{100 * fast.fitted.rms_error_relative:.2f}% of peak, "
          f"boundaries at "
          + ", ".join(f"{b:+.3f} V" for b in fast.fitted.boundaries_abs))

    # Output characteristics at three gate biases.
    vds = np.linspace(0.0, 0.6, 13)
    rows = []
    for vg in (0.4, 0.5, 0.6):
        i_ref = [reference.ids(vg, float(v)) for v in vds]
        i_fast = [fast.ids(vg, float(v)) for v in vds]
        err = 100 * np.sqrt(np.mean((np.array(i_fast) - i_ref) ** 2)) \
            / max(i_ref)
        rows.append((vg, max(i_ref), max(i_fast), err))
        print(f"VG={vg:.1f}  theory: {sparkline(i_ref)}")
        print(f"        fast:   {sparkline(i_fast)}")
    print()
    print(ascii_table(
        ("VG [V]", "peak IDS theory [A]", "peak IDS fast [A]",
         "RMS err [%]"),
        rows, title="Model 2 vs FETToy-equivalent reference",
    ))

    # And the speed difference, the entire point of the paper:
    import time

    start = time.perf_counter()
    reference.iv_family([0.4, 0.5, 0.6], vds)
    t_ref = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(10):
        fast.iv_family([0.4, 0.5, 0.6], vds)
    t_fast = (time.perf_counter() - start) / 10
    print(f"\nfamily evaluation: reference {t_ref*1e3:.1f} ms, "
          f"fast {t_fast*1e3:.2f} ms  ->  {t_ref/t_fast:.0f}x speed-up")


if __name__ == "__main__":
    main()
