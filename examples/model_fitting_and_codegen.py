"""Model fitting deep-dive + HDL code generation.

Shows the machinery behind the paper's §IV: custom region layouts,
boundary optimisation, the (T, EF) pre-fitted library, and the VHDL-AMS
export the authors published through the Southampton validation suite.

Run:  python examples/model_fitting_and_codegen.py
"""

import numpy as np

from repro.experiments.report import ascii_table
from repro.pwl import CNFET, FitSpec
from repro.pwl.codegen import generate_vhdl_ams
from repro.pwl.tables import PrefittedLibrary
from repro.reference import FETToyModel, FETToyParameters


def main() -> None:
    params = FETToyParameters()
    reference = FETToyModel(params)

    # 1. Compare region layouts, paper's two models plus a 5-piece
    #    extension (the paper: "possible to use more sections for an
    #    even higher accuracy but at some computational expense").
    layouts = {
        "model1 (3-piece)": "model1",
        "model2 (4-piece)": "model2",
        "5-piece extension": FitSpec(
            orders=(1, 2, 3, 3, 0),
            boundaries_rel=(-0.30, -0.10, 0.0, 0.12),
            window_rel=(-0.48, 0.32),
            name="model2x",
        ),
    }
    vds = np.linspace(0.0, 0.6, 13)
    rows = []
    for label, model in layouts.items():
        device = CNFET(params, model=model)
        errs = []
        for vg in (0.3, 0.45, 0.6):
            i_ref = np.array([reference.ids(vg, float(v)) for v in vds])
            i_fast = np.array([device.ids(vg, float(v)) for v in vds])
            errs.append(100 * np.sqrt(np.mean((i_fast - i_ref) ** 2))
                        / i_ref.max())
        rows.append((label, 100 * device.fitted.rms_error_relative,
                     float(np.mean(errs))))
    print(ascii_table(
        ("layout", "charge RMS [% peak]", "avg IDS err [%]"),
        rows, title="Region layouts (boundaries optimised per fit)",
    ))

    # 2. Pre-fitted library over (T, EF) for simulator deployment.
    library = PrefittedLibrary(
        temperatures_k=(250.0, 300.0, 350.0),
        fermi_levels_ev=(-0.4, -0.32, -0.25),
        optimize_boundaries=False,
    )
    fitted = library.interpolated(325.0, -0.30)
    print(f"\nlibrary: {len(library)} grid fits; interpolated entry at "
          f"T=325K, EF=-0.30 eV has boundaries "
          + ", ".join(f"{b:+.3f}" for b in fitted.curve.breakpoints))
    print(f"JSON payload: {len(library.to_json())} bytes "
          f"(ship with a design kit, reload with PrefittedLibrary.from_json)")

    # 3. VHDL-AMS export of the fitted Model 2 (paper §VII).
    device = CNFET(params, model="model2")
    code = generate_vhdl_ams(device)
    print("\nVHDL-AMS export (first 25 lines):")
    print("\n".join(code.splitlines()[:25]))
    print(f"... [{len(code.splitlines())} lines total]")


if __name__ == "__main__":
    main()
