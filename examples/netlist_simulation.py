"""Drive the engine from a SPICE-flavoured netlist file.

Two decks exercised through the text front end:

* a CNFET common-source stage with a resistive load — DC transfer
  sweep plus a pulse transient;
* a hierarchical ``.subckt`` deck — an inverter definition instanced
  twice inside a buffer definition, instanced at top level (two
  hierarchy levels, flattened with dot-separated names like
  ``Xbuf.X1.Qp``).

Run:  python examples/netlist_simulation.py
"""

import numpy as np

from repro.circuit.dc import dc_sweep
from repro.circuit.parser import parse_netlist
from repro.circuit.transient import transient
from repro.experiments.report import sparkline

DECK = """
* CNFET common-source amplifier stage
.model fast cnfet model=model2 temperature_k=300 fermi_level_ev=-0.32
Vdd vdd 0 0.6
Vin in 0 PULSE(0.35 0.45 5p 1p 1p 60p 120p)
Rload vdd out 150k
Q1 out in 0 fast l=30n
Cload out 0 5e-17
.dc Vin 0 0.6 25
.tran 0.5p 120p be
.end
"""

SUBCKT_DECK = """
* Hierarchical deck: inverter -> buffer -> top level
.model fast cnfet model=model2 temperature_k=300 fermi_level_ev=-0.32
.subckt inv a y vdd
Qp y a vdd fast polarity=p
Qn y a 0 fast
.ends inv
.subckt buf a y vdd
X1 a w vdd inv
X2 w y vdd inv
.ends buf
Vdd vdd 0 0.6
Vin in 0 PULSE(0 0.6 5p 1p 1p 30p 60p)
Xbuf in out vdd buf
Cload out 0 2e-17
.tran 0.25p 60p trap
.end
"""


def run_subckt_deck() -> None:
    """Parse and run the hierarchical buffer deck."""
    deck = parse_netlist(SUBCKT_DECK, title="hierarchical buffer")
    circuit = deck.circuit
    print(f"\nhierarchical deck: {len(circuit.elements)} elements "
          f"after flattening, subcircuits: {sorted(deck.subcircuits)}")
    print(f"  flattened names: "
          f"{[el.name for el in circuit.elements if '.' in el.name]}")
    directive = deck.analyses[0]
    ds = transient(circuit, tstop=directive.params["tstop"],
                   dt=directive.params["tstep"],
                   method=directive.method)
    print(f"  v(in)    : {sparkline(ds.voltage('in'), 50)}")
    print(f"  v(Xbuf.w): {sparkline(ds.voltage('Xbuf.w'), 50)}")
    print(f"  v(out)   : {sparkline(ds.voltage('out'), 50)}")


def main() -> None:
    deck = parse_netlist(DECK, title="common-source stage")
    print(f"parsed: {len(deck.circuit.elements)} elements, "
          f"{deck.circuit.n_nodes} nodes, "
          f"{len(deck.analyses)} analyses, models: {sorted(deck.models)}")

    for directive in deck.analyses:
        if directive.kind == "dc":
            values = np.linspace(
                directive.params["start"], directive.params["stop"],
                int(directive.params["points"]),
            )
            ds = dc_sweep(deck.circuit, directive.source, values)
            v_out = ds.voltage("out")
            gain = float(np.max(-np.gradient(v_out, values)))
            print(f"\n.dc sweep of {directive.source}:")
            print(f"  v(out): {sparkline(v_out, 50)}")
            print(f"  small-signal gain at best bias: {gain:.2f} V/V")
        else:
            ds = transient(
                deck.circuit,
                tstop=directive.params["tstop"],
                dt=directive.params["tstep"],
                method=directive.method,
            )
            v_out = ds.voltage("out")
            v_in = ds.voltage("in")
            print(f"\n.tran ({directive.method}), "
                  f"{len(ds.axis)} time points:")
            print(f"  v(in) : {sparkline(v_in, 50)}")
            print(f"  v(out): {sparkline(v_out, 50)}")
            swing_in = ds.swing("v(in)")
            swing_out = ds.swing("v(out)")
            print(f"  pulse gain: {swing_out/swing_in:.2f} V/V "
                  f"(input {swing_in*1e3:.0f} mV -> output "
                  f"{swing_out*1e3:.0f} mV, inverted)")
    run_subckt_deck()


if __name__ == "__main__":
    main()
