"""End-to-end smoke of the HTTP simulation service (docs/service.md).

Launches ``python -m repro serve`` as a real subprocess on a free
port, then drives it with :class:`repro.service.ServiceClient`:

* a burst of 8 concurrent transient jobs over the *same* RC topology
  (distinct resistor values) — the coalescing scheduler must fold
  them into fewer engine dispatches than jobs, asserted from
  ``/metrics``;
* one job over a *different* topology, proving mixed groups dispatch
  separately;
* a resubmission of the first spec, which must be served from the
  fingerprint cache (``cached: true``) without a new dispatch;
* a clean remote ``POST /shutdown`` — the server process must exit 0.

Run:  PYTHONPATH=src python examples/service_demo.py

CI runs this via ``make smoke``; it doubles as the service's
process-level integration test (everything in-process lives in
tests/test_service.py).
"""

import os
import socket
import subprocess
import sys
import threading
import time

from repro.service import ServiceClient


def rc_deck(r_ohm: float, stages: int = 1) -> str:
    """An RC lowpass deck; ``stages`` changes the topology."""
    lines = ["* service demo RC lowpass",
             "V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 4e-8)"]
    prev = "in"
    for k in range(stages):
        node = "out" if k == stages - 1 else f"n{k}"
        lines.append(f"R{k + 1} {prev} {node} {r_ohm:.6g}")
        lines.append(f"C{k + 1} {node} 0 1e-12")
        prev = node
    return "\n".join(lines) + "\n"


def transient_spec(r_ohm: float, stages: int = 1) -> dict:
    """A fixed-step transient job over the demo RC deck."""
    return {"kind": "transient", "deck": rc_deck(r_ohm, stages),
            "tstop": 2e-8, "dt": 2e-10}


def wait_for_health(client: ServiceClient, deadline_s: float = 15.0):
    """Poll ``/healthz`` until the server answers (or time out)."""
    start = time.monotonic()
    while True:
        try:
            return client.health()
        except Exception:
            if time.monotonic() - start > deadline_s:
                raise
            time.sleep(0.05)


def main() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "2", "--batch-window", "0.2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        health = wait_for_health(client)
        print(f"server up on port {port}: {health['status']}")

        # 1. same-topology burst -> coalesced into few dispatches
        specs = [transient_spec(1e3 + 50.0 * i) for i in range(8)]
        docs = [None] * len(specs)

        def drive(i: int) -> None:
            docs[i] = ServiceClient(
                f"http://127.0.0.1:{port}").run(specs[i], timeout=60.0)

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(len(specs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(d is not None and d["state"] == "done" for d in docs)
        dispatches = client.metric_value(
            "service_engine_dispatches_total")
        coalesced = client.metric_value("service_jobs_coalesced_total")
        assert dispatches < len(specs), (
            f"no coalescing: {dispatches:.0f} dispatches "
            f"for {len(specs)} jobs")
        print(f"burst of {len(specs)} same-topology jobs -> "
              f"{dispatches:.0f} engine dispatches "
              f"({coalesced:.0f} jobs coalesced)")

        # 2. different topology -> its own dispatch
        other = client.run(transient_spec(1e3, stages=2), timeout=60.0)
        assert other["state"] == "done"
        print(f"two-stage topology served separately "
              f"(job {other['id']})")

        # 3. identical spec again -> fingerprint cache hit
        repeat = client.run(specs[0], timeout=60.0)
        assert repeat["cached"], "resubmitted spec missed the cache"
        assert repeat["result"] == docs[0]["result"]
        hits = client.metric_value("service_cache_hits_total")
        print(f"resubmission served from cache "
              f"({hits:.0f} cache hits)")

        # 4. clean remote shutdown
        client.shutdown()
        code = proc.wait(timeout=15.0)
        assert code == 0, f"server exited {code}"
        print("clean shutdown, exit 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
