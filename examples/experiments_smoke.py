"""End-to-end smoke of the experiment runner (docs/experiments.md).

Drives the committed 2x2x2 smoke matrix
(``benchmarks/configs/smoke.json``: ring oscillator, dense/sparse
backend x chord on/off, 2 repetitions = 8 runs) through the ``repro
experiments`` CLI the way CI exercises it:

1. execute with ``--max-runs 3`` — a simulated interrupt that leaves
   the run directory partially populated;
2. resume (the default) — only the 5 missing runs execute, the 3
   completed records are loaded from disk;
3. regenerate the report twice with ``--report-only`` and require the
   run tables and reports to be byte-identical — the determinism
   contract that makes run directories diffable artifacts.

Run:  PYTHONPATH=src python examples/experiments_smoke.py [run_dir]

CI runs this via ``make experiments-smoke`` and uploads the resulting
``run_table.csv`` as a build artifact.
"""

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CONFIG = REPO / "benchmarks" / "configs" / "smoke.json"


def run_cli(*args: str) -> str:
    """Invoke ``repro experiments`` and return its stdout."""
    cmd = [sys.executable, "-m", "repro", "experiments", *args]
    print("$", " ".join(cmd[2:]))
    out = subprocess.run(cmd, capture_output=True, text=True,
                         cwd=REPO, check=True)
    sys.stdout.write(out.stdout)
    return out.stdout


def main() -> None:
    """Execute, interrupt, resume, and double-regenerate the matrix."""
    if len(sys.argv) > 1:
        root = Path(sys.argv[1]).resolve()
        root.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        root = Path(tempfile.mkdtemp(prefix="exp-smoke-"))
        cleanup = True
    run_dir = root / "ring_smoke"
    try:
        # 1. simulated interrupt: only 3 of 8 runs complete
        out = run_cli("--config", str(CONFIG), "--run-dir", str(root),
                      "--max-runs", "3")
        assert "5 runs pending" in out, out
        records = sorted((run_dir / "runs").glob("r*/record.json"))
        assert len(records) == 3, f"expected 3 records, found " \
            f"{len(records)}"
        mtimes = {p: p.stat().st_mtime_ns for p in records}

        # 2. resume: the remaining 5 execute, the 3 on disk are
        # loaded untouched
        out = run_cli("--config", str(CONFIG), "--run-dir", str(root),
                      "--report")
        assert "3 resumed, 5 computed (complete)" in out, out
        for path, mtime in mtimes.items():
            assert path.stat().st_mtime_ns == mtime, (
                f"resume rewrote completed record {path}")
        table = (run_dir / "run_table.csv").read_bytes()
        report = (run_dir / "report.json").read_bytes()
        payload = json.loads(report.decode())
        assert payload["complete"] and not payload.get("pending"), (
            "report does not mark the experiment complete")

        # 3. regeneration is byte-stable
        for attempt in (1, 2):
            run_cli("--config", str(CONFIG), "--run-dir", str(root),
                    "--report-only")
            assert (run_dir / "run_table.csv").read_bytes() == table, \
                f"run_table.csv drifted on regeneration {attempt}"
            assert (run_dir / "report.json").read_bytes() == report, \
                f"report.json drifted on regeneration {attempt}"

        rows = table.decode().strip().splitlines()
        print(f"\nexperiments smoke OK: {len(rows) - 1} runs, "
              f"run table stable across 2 regenerations "
              f"({run_dir / 'run_table.csv'})")
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
