"""CNFET ring oscillator: transient simulation of a small logic circuit.

The paper's future work names "practical logic circuit structures based
on CNT devices"; this example builds a 3- and 5-stage ring from the fast
Model 2 devices and measures oscillation frequency and stage delay.

Run:  python examples/ring_oscillator.py
"""

from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.experiments.report import ascii_table, sparkline


def run_ring(family: LogicFamily, stages: int):
    circuit, nodes = build_ring_oscillator(family, stages=stages)
    # Kick the ring off its metastable symmetric point.
    x0 = initial_conditions_from_op(
        circuit, {nodes[0]: 0.0, nodes[1]: family.vdd}
    )
    dataset = transient(circuit, tstop=2.5e-10, dt=2e-12, x0=x0,
                        method="be")
    period = dataset.period_estimate(f"v({nodes[0]})", family.vdd / 2)
    return dataset, nodes, period


def main() -> None:
    family = LogicFamily.default(vdd=0.6, model="model2")
    rows = []
    for stages in (3, 5):
        dataset, nodes, period = run_ring(family, stages)
        freq_ghz = 1e-9 / period
        stage_delay_ps = period / (2 * stages) * 1e12
        rows.append((stages, f"{period*1e12:.1f} ps",
                     f"{freq_ghz:.1f} GHz", f"{stage_delay_ps:.2f} ps"))
        trace = dataset.voltage(nodes[0])
        print(f"{stages}-stage ring, v({nodes[0]}): {sparkline(trace, 60)}")
    print()
    print(ascii_table(
        ("stages", "period", "frequency", "stage delay"),
        rows, title="CNFET ring oscillators (model2 devices, BE, 2 ps step)",
    ))
    print("\nNote: per-stage delay reflects the tiny per-unit-length "
          "device charges\nand the 1e-17 F load of the logic family — "
          "the point is the engine runs\nmulti-device nonlinear "
          "transients built on the paper's fast model.")


if __name__ == "__main__":
    main()
