"""CNFET ring oscillator: transient simulation of a small logic circuit.

The paper's future work names "practical logic circuit structures based
on CNT devices"; this example builds a 3- and 5-stage ring from the fast
Model 2 devices, measures oscillation frequency and stage delay, and
compares the fixed-step engine against the adaptive LTE-controlled one
(docs/transient.md) on the same circuit.

Run:  python examples/ring_oscillator.py
"""

from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.experiments.report import ascii_table, sparkline


def run_ring(family: LogicFamily, stages: int, adaptive: bool,
             stats: dict):
    circuit, nodes = build_ring_oscillator(family, stages=stages)
    # Kick the ring off its metastable symmetric point.
    x0 = initial_conditions_from_op(
        circuit, {nodes[0]: 0.0, nodes[1]: family.vdd}
    )
    if adaptive:
        dataset = transient(circuit, tstop=2.5e-10, x0=x0, method="trap",
                            rtol=3e-3, stats=stats)
    else:
        dataset = transient(circuit, tstop=2.5e-10, dt=2e-12, x0=x0,
                            method="be", stats=stats)
    period = dataset.period_estimate(f"v({nodes[0]})", family.vdd / 2)
    return dataset, nodes, period


def main() -> None:
    family = LogicFamily.default(vdd=0.6, model="model2")
    rows = []
    for stages in (3, 5):
        for adaptive in (False, True):
            stats: dict = {}
            dataset, nodes, period = run_ring(family, stages, adaptive,
                                              stats)
            label = "adaptive trap" if adaptive else "fixed BE 2 ps"
            rows.append((
                stages, label, stats["steps"], stats["iterations"],
                f"{period*1e12:.1f} ps",
                f"{period / (2 * stages) * 1e12:.2f} ps",
            ))
            if adaptive:
                trace = dataset.voltage(nodes[0])
                print(f"{stages}-stage ring (adaptive), v({nodes[0]}): "
                      f"{sparkline(trace, 60)}")
    print()
    print(ascii_table(
        ("stages", "engine", "steps", "newton iters", "period",
         "stage delay"),
        rows, title="CNFET ring oscillators: fixed vs adaptive stepping",
    ))
    print(
        "\nNote: the adaptive engine resolves the ring's real ~5 ps "
        "oscillation\n(the 2 ps fixed-BE march over-damps it into a much "
        "slower artifact —\nsee docs/transient.md), which is why its "
        "period differs and its step\ncount is higher at equal tstop.  "
        "At matched accuracy it needs ~5x fewer\nNewton iterations than "
        "fixed-step BE; `make bench` gates that ratio."
    )


if __name__ == "__main__":
    main()
