PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-slow chaos chaos-smoke bench bench-report \
	examples smoke service-smoke experiments-smoke docs-check

## tier-1 test suite (what CI gates on) — includes the doc
## coverage and docs link-checker gates
test:
	$(PYTHON) -m pytest -x -q

## tier-1 minus @pytest.mark.slow (service HTTP lifecycle, bench
## smoke, characterization grids, subprocess determinism probes) —
## the quick inner-loop run; CI runs fast and slow as parallel jobs
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## the slow tier only — exact complement of test-fast, so the two
## lanes together cover everything `make test` covers
test-slow:
	$(PYTHON) -m pytest -x -q -m "slow"

## full chaos suite (docs/robustness.md): seeded fault plans over
## campaign/exprunner/service workloads, asserting fault-free parity —
## includes the heavy @slow cases (service bursts, deadline jobs)
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -x -q

## the quick chaos subset (fault-plan mechanics, cancel tokens,
## kernel/solver seams, exprunner quarantine) — what CI smokes on
## every push; the @slow remainder rides the test-slow lane
chaos-smoke:
	$(PYTHON) -m pytest tests/test_chaos.py -x -q -m "not slow"

## docs gates only: markdown cross-links + public-API doc coverage
docs-check:
	$(PYTHON) -m pytest tests/test_docs_links.py \
		tests/test_doc_coverage.py -q

## tiny end-to-end campaigns + example scripts (CI smoke):
## a seeded device-metric MC with TT/FF/SS corners, the same run again
## against the run directory to exercise resume, a small circuit-level
## (inverter VTC) campaign, a gate-characterization run, the
## hierarchical 4-bit adder deck through both solver backends, and the
## transient/characterization/netlist example scripts.
smoke:
	rm -rf .smoke-mc
	$(PYTHON) -m repro mc --samples 64 --seed 7 --chunk-size 32 \
		--run-dir .smoke-mc --corners
	$(PYTHON) -m repro mc --samples 64 --seed 7 --chunk-size 32 \
		--run-dir .smoke-mc --json > /dev/null
	$(PYTHON) -m repro mc --samples 8 --seed 7 --workload inverter
	$(PYTHON) -m repro characterize --gate nand2 --loads 0.01,0.04 \
		--slews 1,4 --json > /dev/null
	$(PYTHON) -m repro netlist examples/decks/adder4.cir \
		--backend sparse --nodes s0,s3,cout
	$(PYTHON) -m repro netlist examples/decks/adder4.cir \
		--backend dense --json > /dev/null
	$(PYTHON) examples/ring_oscillator.py
	$(PYTHON) examples/gate_characterization.py
	$(PYTHON) examples/netlist_simulation.py
	rm -rf .smoke-mc

## process-level service smoke: launches `repro serve` as a real
## subprocess, drives it over HTTP (same-topology burst -> coalescing
## asserted from /metrics, cache hit, mixed topology), and requires a
## clean remote shutdown with exit code 0.
service-smoke:
	$(PYTHON) examples/service_demo.py

## experiment-runner smoke: execute the 2x2x2 smoke matrix with a
## simulated interrupt (--max-runs 3), resume to completion, then
## regenerate the report twice and require byte-identical run tables
## and reports (the exprunner determinism contract, end to end).
experiments-smoke:
	$(PYTHON) examples/experiments_smoke.py

## full paper-reproduction benchmark suite + perf snapshot.
## Fails when the Table I speed-up assertions regress (pytest) or the
## ISSUE 1 batch/transient floors regress (bench_report --check).
bench:
	$(PYTHON) -m pytest benchmarks -q \
		--benchmark-json=.benchmarks/bench_latest.json
	$(PYTHON) benchmarks/bench_report.py --name perf --check

## refresh the committed BENCH_perf.json without the pass/fail gate
bench-report:
	$(PYTHON) benchmarks/bench_report.py --name perf

examples:
	$(PYTHON) examples/quickstart.py
