PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-report examples smoke

## tier-1 test suite (fast; what CI gates on)
test:
	$(PYTHON) -m pytest -x -q

## tiny end-to-end variability campaigns (CI smoke; <= 64 samples):
## a seeded device-metric MC with TT/FF/SS corners, then the same run
## again against the run directory to exercise resume, then a small
## circuit-level (inverter VTC) campaign.
smoke:
	rm -rf .smoke-mc
	$(PYTHON) -m repro mc --samples 64 --seed 7 --chunk-size 32 \
		--run-dir .smoke-mc --corners
	$(PYTHON) -m repro mc --samples 64 --seed 7 --chunk-size 32 \
		--run-dir .smoke-mc --json > /dev/null
	$(PYTHON) -m repro mc --samples 8 --seed 7 --workload inverter
	rm -rf .smoke-mc

## full paper-reproduction benchmark suite + perf snapshot.
## Fails when the Table I speed-up assertions regress (pytest) or the
## ISSUE 1 batch/transient floors regress (bench_report --check).
bench:
	$(PYTHON) -m pytest benchmarks -q \
		--benchmark-json=.benchmarks/bench_latest.json
	$(PYTHON) benchmarks/bench_report.py --name perf --check

## refresh the committed BENCH_perf.json without the pass/fail gate
bench-report:
	$(PYTHON) benchmarks/bench_report.py --name perf

examples:
	$(PYTHON) examples/quickstart.py
