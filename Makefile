PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-report examples

## tier-1 test suite (fast; what CI gates on)
test:
	$(PYTHON) -m pytest -x -q

## full paper-reproduction benchmark suite + perf snapshot.
## Fails when the Table I speed-up assertions regress (pytest) or the
## ISSUE 1 batch/transient floors regress (bench_report --check).
bench:
	$(PYTHON) -m pytest benchmarks -q \
		--benchmark-json=.benchmarks/bench_latest.json
	$(PYTHON) benchmarks/bench_report.py --name perf --check

## refresh the committed BENCH_perf.json without the pass/fail gate
bench-report:
	$(PYTHON) benchmarks/bench_report.py --name perf

examples:
	$(PYTHON) examples/quickstart.py
